"""Property tests for detflow's symbol-table/call-graph builder.

The graph is the foundation every detflow check stands on, so its two
structural guarantees get property coverage on generated module trees:

1. **Permutation stability** — the graph is a pure function of the
   *set* of modules, never of file discovery order.  A graph that
   changed shape with directory-listing order would make detflow's own
   output nondeterministic (the exact sin it polices).
2. **Resolution soundness on known shapes** — aliased imports, import
   cycles, re-export hops, and method-vs-function shadowing resolve to
   the defining qualname; ``from x import *`` is rejected, not guessed.

Synthetic modules are built as in-memory :class:`FileContext` objects
(no tmp files), so hypothesis can explore hundreds of trees per run.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tools.detflow.graph import IMPORT_STAR_CODE, ProjectGraph
from repro.tools.detlint.engine import FileContext


def make_context(module: str, source: str) -> FileContext:
    return FileContext(
        path=f"synth/{module.replace('.', '/')}.py",
        module=module,
        tree=ast.parse(source),
        lines=source.splitlines(),
        suppressions={},
    )


def graph_shape(graph: ProjectGraph) -> tuple:
    """Everything observable about a graph, in canonical form."""
    return (
        sorted(graph.modules),
        sorted(graph.functions),
        sorted(graph.classes),
        sorted(graph.edge_set()),
        sorted((f.path, f.line, f.code) for f in graph.findings),
    )


# -- generated module trees ----------------------------------------------

MODULE_NAMES = [f"mod{i}" for i in range(5)]
FUNC_NAMES = ["alpha", "beta", "gamma"]


@st.composite
def module_trees(draw):
    """A random package: modules with functions, imports, and calls."""
    n_modules = draw(st.integers(min_value=1, max_value=5))
    names = MODULE_NAMES[:n_modules]
    sources = {}
    for i, name in enumerate(names):
        lines = []
        # Imports: each module may import any other (cycles included).
        for j, other in enumerate(names):
            if j == i:
                continue
            style = draw(st.integers(min_value=0, max_value=2))
            if style == 1:
                lines.append(f"import {other}")
            elif style == 2:
                alias = f"{other}_as"
                lines.append(f"import {other} as {alias}")
        funcs = draw(
            st.lists(st.sampled_from(FUNC_NAMES), min_size=1, max_size=3, unique=True)
        )
        for fn in funcs:
            lines.append(f"def {fn}():")
            # Calls: to own functions or to imported modules' functions.
            calls = draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(names),
                        st.sampled_from(FUNC_NAMES),
                    ),
                    max_size=3,
                )
            )
            body = []
            for target_mod, target_fn in calls:
                if target_mod == name:
                    body.append(f"    {target_fn}()")
                else:
                    prefix = draw(st.sampled_from([target_mod, f"{target_mod}_as"]))
                    body.append(f"    {prefix}.{target_fn}()")
            body.append("    return None")
            lines.extend(body)
        sources[name] = "\n".join(lines) + "\n"
    return sources


@given(tree=module_trees(), seed=st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_graph_is_stable_under_file_ordering_permutations(tree, seed):
    # Parsing a module whose source references aliases that don't exist
    # (style 1 import but alias call) is fine — resolution just misses;
    # the property is about *stability*, not completeness.
    contexts = [make_context(name, src) for name, src in sorted(tree.items())]
    baseline = graph_shape(ProjectGraph.build(list(contexts)))
    shuffled = list(contexts)
    seed.shuffle(shuffled)
    assert graph_shape(ProjectGraph.build(shuffled)) == baseline
    # And building twice from the same order is identical too.
    assert graph_shape(ProjectGraph.build(list(contexts))) == baseline


@given(tree=module_trees())
@settings(max_examples=60, deadline=None)
def test_resolved_edges_point_at_real_functions(tree):
    contexts = [make_context(name, src) for name, src in tree.items()]
    graph = ProjectGraph.build(contexts)
    for caller, callee in graph.edge_set():
        assert caller in graph.functions
        assert callee in graph.functions


# -- known shapes --------------------------------------------------------


def test_import_cycle_resolves_both_directions():
    a = make_context("pkg_a", "import pkg_b\ndef fa():\n    pkg_b.fb()\n")
    b = make_context("pkg_b", "import pkg_a\ndef fb():\n    pkg_a.fa()\n")
    graph = ProjectGraph.build([a, b])
    assert graph.edge_set() == {
        ("pkg_a.fa", "pkg_b.fb"),
        ("pkg_b.fb", "pkg_a.fa"),
    }


def test_aliased_import_resolves():
    helper = make_context("helper", "def work():\n    return 1\n")
    user = make_context(
        "user", "import helper as h\ndef go():\n    h.work()\n"
    )
    graph = ProjectGraph.build([helper, user])
    assert ("user.go", "helper.work") in graph.edge_set()


def test_from_import_resolves():
    helper = make_context("helper2", "def work():\n    return 1\n")
    user = make_context(
        "user2", "from helper2 import work\ndef go():\n    work()\n"
    )
    graph = ProjectGraph.build([helper, user])
    assert ("user2.go", "helper2.work") in graph.edge_set()


def test_reexport_hop_resolves():
    # from pkg import f, where pkg/__init__.py itself re-exports f
    # from pkg.impl: resolution follows the hop to the definition.
    impl = make_context("pkg.impl", "def f():\n    return 1\n")
    init = make_context("pkg", "from pkg.impl import f\n")
    user = make_context("user3", "from pkg import f\ndef go():\n    f()\n")
    graph = ProjectGraph.build([impl, init, user])
    assert ("user3.go", "pkg.impl.f") in graph.edge_set()


def test_import_star_is_rejected_with_finding():
    ctx = make_context("starry", "from os.path import *\n")
    graph = ProjectGraph.build([ctx])
    assert [f.code for f in graph.findings] == [IMPORT_STAR_CODE]


def test_method_and_function_with_same_name_resolve_separately():
    src = (
        "def run():\n"
        "    return 1\n"
        "class Worker:\n"
        "    def run(self):\n"
        "        return 2\n"
        "    def go(self):\n"
        "        self.run()\n"
        "def main():\n"
        "    run()\n"
        "    w = Worker()\n"
        "    w.run()\n"
    )
    ctx = make_context("dual", src)
    graph = ProjectGraph.build([ctx])
    edges = graph.edge_set()
    # self.run() inside the class resolves to the *method*.
    assert ("dual.Worker.go", "dual.Worker.run") in edges
    assert ("dual.Worker.go", "dual.run") not in edges
    # A bare run() at module level resolves to the *function*; the
    # typed local w resolves through the constructor to the method.
    assert ("dual.main", "dual.run") in edges
    assert ("dual.main", "dual.Worker.run") in edges


def test_duplicate_module_name_is_deterministic():
    # Two files claiming one module: the path-sorted first wins, so the
    # graph cannot depend on discovery order.
    first = FileContext(
        path="a/dup.py", module="dup", tree=ast.parse("def f():\n    return 1\n"),
        lines=[], suppressions={},
    )
    second = FileContext(
        path="b/dup.py", module="dup", tree=ast.parse("def g():\n    return 2\n"),
        lines=[], suppressions={},
    )
    forward = graph_shape(ProjectGraph.build([first, second]))
    reverse = graph_shape(ProjectGraph.build([second, first]))
    assert forward == reverse
    assert "dup.f" in dict.fromkeys(forward[1])
