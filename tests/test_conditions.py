"""The shared LinkConditions sample type."""

import pytest
from hypothesis import given, strategies as st

from repro.conditions import LinkConditions, outage


def test_valid_sample():
    s = LinkConditions(0.0, 100.0, 10.0, 50.0, 0.01, loss_burst=20.0)
    assert not s.is_outage
    assert s.capacity_mbps(True) == 100.0
    assert s.capacity_mbps(False) == 10.0


def test_validation():
    with pytest.raises(ValueError):
        LinkConditions(0.0, -1.0, 10.0, 50.0, 0.0)
    with pytest.raises(ValueError):
        LinkConditions(0.0, 10.0, 10.0, -1.0, 0.0)
    with pytest.raises(ValueError):
        LinkConditions(0.0, 10.0, 10.0, 50.0, 1.5)
    with pytest.raises(ValueError):
        LinkConditions(0.0, 10.0, 10.0, 50.0, 0.0, loss_burst=0.5)


def test_outage_factory():
    s = outage(5.0)
    assert s.is_outage
    assert s.time_s == 5.0
    assert s.loss_rate == 1.0
    assert s.downlink_mbps == 0.0


def test_outage_requires_both_directions_dead():
    s = LinkConditions(0.0, 0.0, 5.0, 50.0, 0.0)
    assert not s.is_outage


@given(
    st.floats(min_value=0.0, max_value=1e4),
    st.floats(min_value=0.0, max_value=1e3),
)
def test_capacity_accessor_consistent(dl, ul):
    s = LinkConditions(0.0, dl, ul, 50.0, 0.0)
    assert s.capacity_mbps(True) == dl
    assert s.capacity_mbps(False) == ul


def test_frozen():
    s = outage(0.0)
    with pytest.raises(AttributeError):
        s.downlink_mbps = 5.0
