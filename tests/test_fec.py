"""FEC transport: the paper's suggested fix for Starlink loss."""

import numpy as np
import pytest

from repro.net import FixedConditions, Path, Simulator
from repro.net.link import bdp_bytes
from repro.transport import FecConfig, open_fec_flow, open_tcp_connection


def fixed_path(sim, rate=100.0, delay_ms=30.0, loss=0.0, burst=1.0, seed=0):
    fwd = FixedConditions(rate, delay_ms, loss, burst)
    rev = FixedConditions(max(rate / 10.0, 1.0), delay_ms)
    buf = max(2 * bdp_bytes(rate, 2 * delay_ms), 64 * 1500)
    return Path(sim, fwd, rev, buf, np.random.default_rng(seed))


def run_fec(rate_mbps, duration=30.0, loss=0.0, burst=1.0, config=None, seed=0):
    sim = Simulator()
    path = fixed_path(sim, rate=100.0, loss=loss, burst=burst, seed=seed)
    sender, receiver = open_fec_flow(
        sim, path, rate_mbps, config=config
    )
    sender.start()
    sim.run(until_s=duration)
    receiver.finalize(sender.stats.blocks_sent)
    return sender, receiver


def test_config_validation():
    with pytest.raises(ValueError):
        FecConfig(data_segments=0)
    with pytest.raises(ValueError):
        FecConfig(repair_segments=-1)
    assert FecConfig(20, 4).overhead == pytest.approx(4 / 24)


def test_clean_link_all_blocks_intact():
    sender, receiver = run_fec(30.0)
    assert sender.stats.blocks_lost == 0
    assert sender.stats.blocks_recovered == 0
    assert sender.stats.blocks_intact > 0


def test_wire_rate_includes_overhead():
    sender, _ = run_fec(30.0, duration=10.0)
    wire_mbps = sender.stats.segments_sent * 1500 * 8 / 1e6 / 10.0
    assert wire_mbps == pytest.approx(30.0 / (1.0 - FecConfig().overhead), rel=0.05)


def test_repairs_random_loss():
    """2 % i.i.d. loss with r=4/k=20: virtually every block recovers."""
    sender, receiver = run_fec(30.0, loss=0.02, seed=1)
    total = sender.stats.blocks_sent
    assert sender.stats.block_loss_rate < 0.02
    assert sender.stats.blocks_recovered > 0
    assert sender.stats.data_bytes_delivered > 0.95 * total * 20 * 1500 * 0.9


def test_no_repair_segments_means_no_recovery():
    config = FecConfig(data_segments=20, repair_segments=0)
    sender, _ = run_fec(30.0, loss=0.02, config=config, seed=2)
    # Any single loss kills a block: with ~2 % loss and 20-segment blocks,
    # about a third of blocks should be incomplete.
    assert sender.stats.block_loss_rate > 0.15
    assert sender.stats.blocks_recovered == 0


def test_bursty_loss_defeats_small_blocks_less_than_iid_rate_suggests():
    """Starlink-style bursts: whole blocks die, the rest are untouched —
    block loss ~ burst arrival rate, not per-packet loss."""
    sender, _ = run_fec(30.0, loss=0.02, burst=40.0, seed=3)
    assert sender.stats.block_loss_rate < 0.25


def test_fec_beats_tcp_on_starlink_like_loss():
    """The paper's motivation: at Starlink-like bursty loss, rate-based FEC
    sustains goodput that loss-driven TCP cannot."""
    loss, burst = 0.006, 60.0
    sim = Simulator()
    path = fixed_path(sim, rate=100.0, loss=loss, burst=burst, seed=4)
    tcp_sender, tcp_receiver = open_tcp_connection(sim, path)
    tcp_sender.start()
    sim.run(until_s=40.0)
    tcp_mbps = tcp_receiver.bytes_received * 8 / 1e6 / 40.0

    fec_sender, fec_receiver = run_fec(
        70.0, duration=40.0, loss=loss, burst=burst, seed=4
    )
    fec_mbps = fec_sender.stats.data_bytes_delivered * 8 / 1e6 / 40.0
    assert fec_mbps > 1.5 * tcp_mbps


def test_rejects_bad_rate():
    sim = Simulator()
    path = fixed_path(sim)
    with pytest.raises(ValueError):
        open_fec_flow(sim, path, 0.0)
