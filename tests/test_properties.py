"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.conditions import LinkConditions
from repro.core.coverage import classify_level, coverage_shares
from repro.core.fluid import FluidTcp, fluid_udp_series
from repro.emu.traces import throughput_to_opportunities_ms
from repro.net import FixedConditions, Path, Simulator
from repro.net.link import bdp_bytes
from repro.transport import open_tcp_connection

conditions_st = st.builds(
    LinkConditions,
    time_s=st.floats(min_value=0.0, max_value=1e5),
    downlink_mbps=st.floats(min_value=0.0, max_value=500.0),
    uplink_mbps=st.floats(min_value=0.0, max_value=50.0),
    rtt_ms=st.floats(min_value=1.0, max_value=1000.0),
    loss_rate=st.floats(min_value=0.0, max_value=1.0),
    loss_burst=st.floats(min_value=1.0, max_value=200.0),
)


@given(st.lists(conditions_st, min_size=1, max_size=50))
def test_udp_goodput_never_exceeds_capacity(samples):
    series = fluid_udp_series(samples)
    for value, sample in zip(series, samples):
        assert 0.0 <= value <= sample.downlink_mbps + 1e-9


@given(st.lists(conditions_st, min_size=1, max_size=50), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_fluid_tcp_bounded_by_capacity(samples, seed):
    model = FluidTcp(seed=seed)
    for sample in samples:
        value = model.step(sample)
        assert 0.0 <= value <= sample.downlink_mbps + 1e-9


@given(st.lists(conditions_st, min_size=1, max_size=50), st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_fluid_tcp_window_state_valid(samples, parallel):
    model = FluidTcp(parallel=parallel, seed=1)
    for sample in samples:
        model.step(sample)
        assert np.all(model._cwnd >= 2.0 * model.mss - 1e-9)
        assert np.all(np.isfinite(model._cwnd))


@given(
    st.lists(st.floats(min_value=0.0, max_value=120.0), min_size=1, max_size=10)
)
@settings(deadline=None, max_examples=40)
def test_trace_conversion_conserves_volume(series):
    opps = throughput_to_opportunities_ms(series)
    total_bits = sum(series) * 1e6  # 1 s per entry
    converted_bits = len(opps) * 1500 * 8
    # Carry keeps the error below one packet per conversion.
    assert abs(total_bits - converted_bits) <= 1500 * 8


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=300
    )
)
def test_coverage_shares_partition(values):
    shares = coverage_shares("x", values)
    total = shares.very_low + shares.low + shares.medium + shares.high
    assert abs(total - 1.0) < 1e-9
    # Each classified level contributes to exactly one bucket.
    for v in values:
        classify_level(v)


@given(
    st.floats(min_value=1.0, max_value=200.0),
    st.floats(min_value=5.0, max_value=100.0),
    st.integers(0, 50),
)
@settings(max_examples=10, deadline=None)
def test_tcp_delivers_in_order_prefix(rate, delay_ms, seed):
    """Whatever the link parameters, TCP app-level data is an in-order
    prefix: bytes_received == rcv_next * segment."""
    sim = Simulator()
    fwd = FixedConditions(rate, delay_ms, loss=0.01, burst=5.0)
    rev = FixedConditions(max(rate / 10.0, 1.0), delay_ms)
    buf = max(2 * bdp_bytes(rate, 2 * delay_ms), 64 * 1500)
    path = Path(sim, fwd, rev, buf, np.random.default_rng(seed))
    sender, receiver = open_tcp_connection(sim, path)
    sender.start()
    sim.run(until_s=3.0)
    assert receiver.bytes_received == receiver.rcv_next * 1500
    assert sender.snd_una <= sender.snd_nxt
