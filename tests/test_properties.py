"""Property-based tests on core invariants (hypothesis)."""

import json
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conditions import LinkConditions
from repro.core.coverage import classify_level, coverage_shares
from repro.core.dataset import (
    NETWORKS,
    SecondSample,
    TestRecord,
    record_from_dict,
    record_to_dict,
)
from repro.core.fluid import FluidTcp, fluid_udp_series
from repro.emu.traces import throughput_to_opportunities_ms
from repro.faults import FaultSchedule
from repro.faults.events import FaultEffect
from repro.geo.classify import AreaType
from repro.net import FixedConditions, Path, Simulator
from repro.net.link import bdp_bytes
from repro.obs import MetricsRegistry, merge_snapshots
from repro.transport import open_tcp_connection

conditions_st = st.builds(
    LinkConditions,
    time_s=st.floats(min_value=0.0, max_value=1e5),
    downlink_mbps=st.floats(min_value=0.0, max_value=500.0),
    uplink_mbps=st.floats(min_value=0.0, max_value=50.0),
    rtt_ms=st.floats(min_value=1.0, max_value=1000.0),
    loss_rate=st.floats(min_value=0.0, max_value=1.0),
    loss_burst=st.floats(min_value=1.0, max_value=200.0),
)


@given(st.lists(conditions_st, min_size=1, max_size=50))
def test_udp_goodput_never_exceeds_capacity(samples):
    series = fluid_udp_series(samples)
    for value, sample in zip(series, samples):
        assert 0.0 <= value <= sample.downlink_mbps + 1e-9


@given(st.lists(conditions_st, min_size=1, max_size=50), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_fluid_tcp_bounded_by_capacity(samples, seed):
    model = FluidTcp(seed=seed)
    for sample in samples:
        value = model.step(sample)
        assert 0.0 <= value <= sample.downlink_mbps + 1e-9


@given(st.lists(conditions_st, min_size=1, max_size=50), st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_fluid_tcp_window_state_valid(samples, parallel):
    model = FluidTcp(parallel=parallel, seed=1)
    for sample in samples:
        model.step(sample)
        assert np.all(model._cwnd >= 2.0 * model.mss - 1e-9)
        assert np.all(np.isfinite(model._cwnd))


@given(
    st.lists(st.floats(min_value=0.0, max_value=120.0), min_size=1, max_size=10)
)
@settings(deadline=None, max_examples=40)
def test_trace_conversion_conserves_volume(series):
    opps = throughput_to_opportunities_ms(series)
    total_bits = sum(series) * 1e6  # 1 s per entry
    converted_bits = len(opps) * 1500 * 8
    # Carry keeps the error below one packet per conversion.
    assert abs(total_bits - converted_bits) <= 1500 * 8


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=300
    )
)
def test_coverage_shares_partition(values):
    shares = coverage_shares("x", values)
    total = shares.very_low + shares.low + shares.medium + shares.high
    assert abs(total - 1.0) < 1e-9
    # Each classified level contributes to exactly one bucket.
    for v in values:
        classify_level(v)


# -- fault composition ---------------------------------------------------

effect_st = st.builds(
    FaultEffect,
    blackout=st.booleans(),
    capacity_factor=st.floats(min_value=0.0, max_value=1.0),
    extra_loss=st.floats(min_value=0.0, max_value=1.0),
    extra_rtt_ms=st.floats(min_value=0.0, max_value=500.0),
)


@given(st.lists(effect_st, min_size=1, max_size=6), st.integers(0, 10_000))
def test_fault_compose_order_independent_and_blackout_dominant(effects, seed):
    """Concurrent fault effects compose the same in any order, and one
    blackout forces a blackout no matter what it composes with."""
    composed = FaultSchedule.compose(effects)
    assert composed.blackout == any(e.blackout for e in effects)
    assert 0.0 <= composed.extra_loss <= 1.0
    shuffled = list(effects)
    random.Random(seed).shuffle(shuffled)
    permuted = FaultSchedule.compose(shuffled)
    assert permuted.blackout == composed.blackout
    # Float products/sums over a permutation agree up to rounding.
    assert math.isclose(
        permuted.capacity_factor,
        composed.capacity_factor,
        rel_tol=1e-9,
        abs_tol=1e-12,
    )
    assert math.isclose(
        permuted.extra_loss, composed.extra_loss, rel_tol=1e-9, abs_tol=1e-12
    )
    assert math.isclose(
        permuted.extra_rtt_ms,
        composed.extra_rtt_ms,
        rel_tol=1e-9,
        abs_tol=1e-12,
    )


# -- record serialization ------------------------------------------------

_finite = dict(allow_nan=False, allow_infinity=False)

sample_st = st.builds(
    SecondSample,
    time_s=st.floats(min_value=0.0, max_value=1e6, **_finite),
    throughput_mbps=st.floats(min_value=0.0, max_value=1e4, **_finite),
    rtt_ms=st.floats(min_value=0.0, max_value=1e5, **_finite),
    loss_rate=st.floats(min_value=0.0, max_value=1.0, **_finite),
    speed_kmh=st.floats(min_value=0.0, max_value=300.0, **_finite),
    area=st.sampled_from(list(AreaType)),
    lat_deg=st.floats(min_value=-90.0, max_value=90.0, **_finite),
    lon_deg=st.floats(min_value=-180.0, max_value=180.0, **_finite),
)

record_st = st.builds(
    TestRecord,
    test_id=st.integers(0, 10**9),
    drive_id=st.integers(0, 10**4),
    network=st.sampled_from(NETWORKS),
    protocol=st.sampled_from(("tcp", "udp", "ping")),
    direction=st.sampled_from(("dl", "ul")),
    parallel=st.integers(1, 16),
    samples=st.lists(sample_st, max_size=5),
    retransmission_rate=st.floats(min_value=0.0, max_value=1.0, **_finite),
)


@given(record_st)
@settings(max_examples=50, deadline=None)
def test_record_round_trips_through_dict_and_json(rec):
    """record_to_dict/record_from_dict is lossless — including through
    actual JSON text, which is what checkpoints and datasets persist."""
    assert record_from_dict(record_to_dict(rec)) == rec
    assert record_from_dict(json.loads(json.dumps(record_to_dict(rec)))) == rec


# -- obs metric merge ----------------------------------------------------

_MERGE_BUCKETS = (1.0, 10.0)


def _snapshot_from_ops(ops):
    registry = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "counter":
            registry.counter(name).inc(value)
        elif kind == "gauge":
            registry.gauge(name).set(value)
        else:
            registry.histogram(name, buckets=_MERGE_BUCKETS).observe(value)
    return registry.snapshot()


snapshot_st = st.lists(
    st.tuples(
        st.sampled_from(("counter", "gauge", "histogram")),
        st.sampled_from(("a", "b", "c")),
        st.integers(0, 100).map(float),
    ),
    max_size=8,
).map(_snapshot_from_ops)


@given(snapshot_st, snapshot_st, snapshot_st)
@settings(max_examples=50, deadline=None)
def test_obs_metric_merge_associative(a, b, c):
    """merge(merge(a, b), c) == merge(a, merge(b, c)) — the property that
    lets the parallel campaign fold worker snapshots incrementally.
    Values are integer-valued floats, so sums are exact."""
    assert merge_snapshots(merge_snapshots(a, b), c) == merge_snapshots(
        a, merge_snapshots(b, c)
    )
    # And the empty snapshot is the identity.
    assert merge_snapshots(a, []) == merge_snapshots([], a)


@given(
    st.floats(min_value=1.0, max_value=200.0),
    st.floats(min_value=5.0, max_value=100.0),
    st.integers(0, 50),
)
@settings(max_examples=10, deadline=None)
def test_tcp_delivers_in_order_prefix(rate, delay_ms, seed):
    """Whatever the link parameters, TCP app-level data is an in-order
    prefix: bytes_received == rcv_next * segment."""
    sim = Simulator()
    fwd = FixedConditions(rate, delay_ms, loss=0.01, burst=5.0)
    rev = FixedConditions(max(rate / 10.0, 1.0), delay_ms)
    buf = max(2 * bdp_bytes(rate, 2 * delay_ms), 64 * 1500)
    path = Path(sim, fwd, rev, buf, np.random.default_rng(seed))
    sender, receiver = open_tcp_connection(sim, path)
    sender.start()
    sim.run(until_s=3.0)
    assert receiver.bytes_received == receiver.rcv_next * 1500
    assert sender.snd_una <= sender.snd_nxt


# -- TCP water-fill allocation invariants --------------------------------


@given(
    cwnds=st.lists(
        st.floats(min_value=1e3, max_value=1e9), min_size=1, max_size=8
    ),
    capacity_bytes=st.floats(min_value=1e2, max_value=1e10),
    rtt_s=st.floats(min_value=1e-3, max_value=2.0),
)
@settings(max_examples=100, deadline=None)
def test_water_fill_allocation_invariants(cwnds, capacity_bytes, rtt_s):
    """FluidTcp._allocate conserves capacity and never over-serves a lane:
    every rate is within its lane's demand, the total never exceeds
    capacity, and when demand saturates the link the capacity is fully
    spent."""
    model = FluidTcp(parallel=len(cwnds))
    model._cwnd = np.asarray(cwnds, dtype=float)
    rates = np.asarray(model._allocate(capacity_bytes, rtt_s))
    demand = np.asarray(cwnds, dtype=float) / rtt_s
    assert np.all(rates >= 0.0)
    assert np.all(rates <= demand * (1.0 + 1e-12) + 1e-12)
    total = float(demand.sum())
    if total <= capacity_bytes:
        # Unconstrained: everyone gets exactly their demand.
        assert np.array_equal(rates, demand)
    else:
        # Constrained: the link is fully allocated (up to fp rounding).
        assert float(rates.sum()) <= capacity_bytes * (1.0 + 1e-9)
        assert float(rates.sum()) == pytest.approx(capacity_bytes, rel=1e-9)


@given(
    cwnds=st.lists(
        st.floats(min_value=1e3, max_value=1e9), min_size=2, max_size=8
    ),
    capacity_bytes=st.floats(min_value=1e2, max_value=1e10),
    rtt_s=st.floats(min_value=1e-3, max_value=2.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=100, deadline=None)
def test_water_fill_allocation_order_invariant(cwnds, capacity_bytes, rtt_s, seed):
    """Permuting the lanes permutes the rates: lane identity never buys
    bandwidth (tied demands receive equal shares either way)."""
    perm = np.random.default_rng(seed).permutation(len(cwnds))
    model = FluidTcp(parallel=len(cwnds))
    model._cwnd = np.asarray(cwnds, dtype=float)
    rates = np.asarray(model._allocate(capacity_bytes, rtt_s))
    shuffled = FluidTcp(parallel=len(cwnds))
    shuffled._cwnd = np.asarray(cwnds, dtype=float)[perm]
    shuffled_rates = np.asarray(shuffled._allocate(capacity_bytes, rtt_s))
    np.testing.assert_allclose(shuffled_rates, rates[perm], rtol=1e-9, atol=0.0)
