"""ScheduledLossTraceLink: per-second loss replay, and MpShell loss flag."""

import numpy as np
import pytest

from repro.conditions import LinkConditions
from repro.emu.mpshell import MpShell, ScheduledLossTraceLink
from repro.emu.traces import conditions_to_opportunities_ms
from repro.net.link import ConditionsSchedule
from repro.net.packet import Packet
from repro.net.simulator import Simulator


def make_samples():
    """5 s clean, 5 s at 30 % loss."""
    samples = []
    for t in range(10):
        loss = 0.3 if t >= 5 else 0.0
        samples.append(LinkConditions(float(t), 12.0, 1.2, 40.0, loss))
    return samples


def test_scheduled_loss_follows_the_second():
    samples = make_samples()
    sim = Simulator()
    link = ScheduledLossTraceLink(
        schedule=ConditionsSchedule(samples),
        sim=sim,
        opportunities_ms=conditions_to_opportunities_ms(samples),
        one_way_delay_ms=1.0,
        buffer_bytes=50_000_000,
        rng=np.random.default_rng(0),
    )
    received = []
    link.connect(lambda p: received.append(p.seq))
    # Pace at the link rate (1000 pkts/s at 12 Mbps).
    for i in range(10_000):
        sim.schedule_at(i * 0.001, lambda i=i: link.send(Packet(flow_id=0, size_bytes=1500, seq=i)))
    sim.run(until_s=10.5)
    first_half = [s for s in received if s < 5000]
    second_half = [s for s in received if s >= 5000]
    assert len(first_half) / 5000 > 0.98  # clean seconds
    assert 0.55 <= len(second_half) / 5000 <= 0.85  # ~30 % lost


def test_mpshell_replay_loss_flag():
    lossy = [
        LinkConditions(float(t), 12.0, 1.2, 40.0, 0.2, loss_burst=5.0)
        for t in range(5)
    ]
    with_loss = MpShell(seed=1).add_interface("a", lossy, replay_loss=True)
    without = MpShell(seed=1).add_interface("a", lossy, replay_loss=False)
    assert with_loss.forward_link.loss_rate == pytest.approx(0.2)
    assert without.forward_link.loss_rate == 0.0
