"""Event loop semantics."""

import pytest

from repro.net.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_now_advances():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("late"))
    sim.run(until_s=2.0)
    assert fired == []
    assert sim.now == 2.0
    sim.run(until_s=10.0)
    assert fired == ["late"]


def test_cancel_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.pending_events == 1


def test_nested_scheduling():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 2.0)]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_stop_halts_processing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until_s=7.0)
    assert sim.now == 7.0


def test_stop_does_not_fast_forward_to_until():
    """A stopped run stays at the last processed event's time.

    Regression test: ``run(until_s=...)`` used to fast-forward ``now`` to
    the deadline even when ``stop()`` had halted processing mid-window,
    silently skipping the simulated span between the stop and the
    deadline.
    """
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run(until_s=10.0)
    assert fired == ["a"]
    assert sim.now == 1.0
    # Resuming honours the remaining events and only then the deadline.
    sim.run(until_s=10.0)
    assert fired == ["a", "b"]
    assert sim.now == 10.0
