"""Video QoE model."""

import pytest

from repro.apps.video import (
    DEFAULT_LADDER_MBPS,
    HD_1080P_INDEX,
    PlayerConfig,
    evaluate_network,
    play_video,
)


def test_config_validation():
    with pytest.raises(ValueError):
        PlayerConfig(ladder_mbps=())
    with pytest.raises(ValueError):
        PlayerConfig(ladder_mbps=(5.0, 1.0))
    with pytest.raises(ValueError):
        PlayerConfig(target_buffer_s=5.0, panic_buffer_s=5.0)


def test_fast_network_plays_top_rendition():
    session = play_video([100.0] * 300)
    assert session.rebuffer_s == 0.0
    assert session.time_at_or_above(len(DEFAULT_LADDER_MBPS) - 1) > 0.8
    assert session.startup_delay_s <= 3.0


def test_slow_network_stays_low():
    session = play_video([1.5] * 300)
    assert session.time_at_or_above(HD_1080P_INDEX) < 0.1
    assert session.mean_bitrate_mbps < 2.5


def test_dead_network_rebuffers():
    series = [50.0] * 60 + [0.0] * 60 + [50.0] * 60
    session = play_video(series)
    assert session.rebuffer_s > 10.0
    assert session.rebuffer_ratio > 0.05


def test_buffer_rides_out_short_outage():
    """A 5 s gap is absorbed by a 20 s buffer with no stall."""
    series = [50.0] * 60 + [0.0] * 5 + [50.0] * 60
    session = play_video(series)
    assert session.rebuffer_s == 0.0


def test_negative_throughput_rejected():
    with pytest.raises(ValueError):
        play_video([10.0, -1.0])


def test_verdict_thresholds():
    good = evaluate_network("X", [100.0] * 300)
    assert good.supports_hd
    bad = evaluate_network("Y", [1.0] * 300)
    assert not bad.supports_hd


def test_mean_bitrate_accounting():
    session = play_video([100.0] * 120)
    assert session.mean_bitrate_mbps <= max(DEFAULT_LADDER_MBPS)
    assert session.mean_bitrate_mbps > 5.0


def test_played_plus_rebuffer_accounts_time():
    series = [30.0] * 100
    session = play_video(series)
    total = session.played_s + session.rebuffer_s + session.startup_delay_s
    assert total == pytest.approx(100.0)
