"""Cross-validation: the fluid TCP model vs the packet-level simulator.

The campaign-scale figures use the fluid model; the transport figures use
the packet simulator.  These tests pin the two implementations to agree on
the regimes the paper's findings live in, so conclusions do not depend on
which fidelity level produced them.
"""

import numpy as np

from repro.conditions import LinkConditions, outage
from repro.core.fluid import fluid_tcp_series, fluid_udp_series
from repro.tools.iperf import run_tcp_test, run_udp_test


def flat(rate, seconds=90, rtt=50.0, loss=0.0, burst=1.0):
    return [
        LinkConditions(float(t), rate, rate / 10.0, rtt, loss, loss_burst=burst)
        for t in range(seconds)
    ]


def agree(fluid_value, packet_value, rel=0.5):
    """Same order of magnitude and direction; fluid is a 1 Hz abstraction,
    so the tolerance is deliberately loose."""
    assert packet_value > 0
    ratio = fluid_value / packet_value
    assert (1 - rel) <= ratio <= 1.0 / (1 - rel), (fluid_value, packet_value)


def test_udp_agreement_clean():
    tr = flat(rate=80.0)
    fluid = np.mean(fluid_udp_series(tr))
    packet = run_udp_test(tr, duration_s=60.0).throughput_mbps
    agree(fluid, packet, rel=0.1)


def test_udp_agreement_lossy():
    tr = flat(rate=80.0, loss=0.05)
    fluid = np.mean(fluid_udp_series(tr))
    packet = run_udp_test(tr, duration_s=60.0, seed=1).throughput_mbps
    agree(fluid, packet, rel=0.15)


def test_tcp_agreement_clean():
    tr = flat(rate=60.0)
    fluid = np.mean(fluid_tcp_series(tr, seed=2))
    packet = run_tcp_test(tr, duration_s=90.0, seed=2).throughput_mbps
    agree(fluid, packet, rel=0.35)


def test_tcp_agreement_bursty_loss():
    """The Starlink regime: moderate loss in large bursts."""
    tr = flat(rate=150.0, seconds=150, rtt=60.0, loss=0.004, burst=80.0)
    fluid = np.mean(fluid_tcp_series(tr, seed=3))
    packet = run_tcp_test(tr, duration_s=150.0, seed=3).throughput_mbps
    agree(fluid, packet, rel=0.6)


def test_tcp_agreement_with_outages():
    tr = []
    for t in range(120):
        if t % 30 in (20, 21, 22, 23):
            tr.append(outage(float(t)))
        else:
            tr.append(LinkConditions(float(t), 100.0, 10.0, 50.0, 0.001, loss_burst=40.0))
    fluid = np.mean(fluid_tcp_series(tr, seed=4))
    packet = run_tcp_test(tr, duration_s=120.0, seed=4).throughput_mbps
    agree(fluid, packet, rel=0.6)


def test_both_models_rank_networks_identically():
    """Whatever the absolute gaps, both fidelity levels must order a good
    cellular channel above a lossy Starlink channel for TCP, and the
    reverse when the Starlink channel has more capacity for UDP."""
    cellularish = flat(rate=120.0, seconds=120, rtt=50.0, loss=0.00002, burst=4.0)
    starlinkish = flat(rate=200.0, seconds=120, rtt=60.0, loss=0.005, burst=80.0)

    fluid_cell_tcp = np.mean(fluid_tcp_series(cellularish, seed=5))
    fluid_star_tcp = np.mean(fluid_tcp_series(starlinkish, seed=5))
    pkt_cell_tcp = run_tcp_test(cellularish, duration_s=120.0, seed=5).throughput_mbps
    pkt_star_tcp = run_tcp_test(starlinkish, duration_s=120.0, seed=5).throughput_mbps
    assert fluid_cell_tcp > fluid_star_tcp
    assert pkt_cell_tcp > pkt_star_tcp

    fluid_cell_udp = np.mean(fluid_udp_series(cellularish))
    fluid_star_udp = np.mean(fluid_udp_series(starlinkish))
    assert fluid_star_udp > fluid_cell_udp
