"""Bootstrap CIs and network comparisons."""

import numpy as np
import pytest

from repro.core.stats import (
    block_bootstrap_ci,
    compare_networks,
    summarize_with_ci,
)


def test_ci_contains_true_mean_for_iid():
    gen = np.random.default_rng(0)
    data = gen.normal(100.0, 10.0, size=2000)
    ci = block_bootstrap_ci(data, block_s=1, seed=1)
    assert 100.0 in ci
    assert ci.estimate == pytest.approx(float(np.mean(data)))
    assert ci.low < ci.estimate < ci.high


def test_ci_wider_for_correlated_blocks():
    gen = np.random.default_rng(1)
    # Strongly autocorrelated series: 50-second constant runs.
    levels = gen.normal(100.0, 30.0, size=40)
    data = np.repeat(levels, 50)
    iid_ci = block_bootstrap_ci(data, block_s=1, seed=2)
    block_ci = block_bootstrap_ci(data, block_s=50, seed=2)
    assert block_ci.width > 1.5 * iid_ci.width


def test_ci_validation():
    with pytest.raises(ValueError):
        block_bootstrap_ci([])
    with pytest.raises(ValueError):
        block_bootstrap_ci([1.0], confidence=1.5)


def test_ci_median_statistic():
    data = [1.0] * 50 + [100.0] * 50 + [1.0] * 50
    ci = block_bootstrap_ci(data, statistic=np.median, seed=3)
    assert ci.estimate == 1.0


def test_compare_networks_detects_difference():
    gen = np.random.default_rng(4)
    fast = gen.normal(150.0, 20.0, size=300)
    slow = gen.normal(60.0, 20.0, size=300)
    result = compare_networks(fast, slow)
    assert result.significant()
    assert result.prob_a_greater > 0.9


def test_compare_networks_null():
    gen = np.random.default_rng(5)
    a = gen.normal(100.0, 20.0, size=300)
    b = gen.normal(100.0, 20.0, size=300)
    result = compare_networks(a, b)
    assert not result.significant(alpha=0.01)
    assert 0.35 < result.prob_a_greater < 0.65


def test_compare_networks_validation():
    with pytest.raises(ValueError):
        compare_networks([], [1.0])


def test_summary_line_format():
    line = summarize_with_ci("MOB", [100.0] * 100)
    assert line.startswith("MOB: mean 100.0")
    assert "95% CI" in line
