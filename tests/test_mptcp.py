"""MPTCP: aggregation, head-of-line blocking, schedulers, reinjection."""

import numpy as np
import pytest

from repro.net import FixedConditions, Path, Simulator
from repro.net.link import bdp_bytes
from repro.transport.mptcp import (
    Blest,
    MinRtt,
    RoundRobin,
    make_scheduler,
    open_mptcp_connection,
)


def fixed_path(sim, rate=100.0, delay_ms=20.0, loss=0.0, burst=1.0, seed=0):
    fwd = FixedConditions(rate, delay_ms, loss, burst)
    rev = FixedConditions(max(rate / 10.0, 1.0), delay_ms)
    buf = max(2 * bdp_bytes(rate, 2 * delay_ms), 64 * 1500)
    return Path(sim, fwd, rev, buf, np.random.default_rng(seed))


def run_mptcp(paths_spec, duration=10.0, seed=0, **kwargs):
    sim = Simulator()
    paths = [
        fixed_path(sim, seed=seed + i, **spec) for i, spec in enumerate(paths_spec)
    ]
    conn, recv = open_mptcp_connection(sim, paths, **kwargs)
    conn.start()
    sim.run(until_s=duration)
    return conn, recv, recv.bytes_received * 8 / 1e6 / duration


def test_scheduler_factory():
    assert isinstance(make_scheduler("blest"), Blest)
    assert isinstance(make_scheduler("minrtt"), MinRtt)
    assert isinstance(make_scheduler("roundrobin"), RoundRobin)
    with pytest.raises(KeyError):
        make_scheduler("ecf")


def test_aggregates_two_clean_paths():
    _, _, mbps = run_mptcp(
        [dict(rate=100.0, delay_ms=20.0), dict(rate=50.0, delay_ms=40.0)],
        buffer_segments=8192,
    )
    # Should clearly beat either path alone.
    assert mbps > 110.0


def test_single_path_mptcp_works():
    _, _, mbps = run_mptcp([dict(rate=50.0, delay_ms=20.0)], buffer_segments=4096)
    assert mbps > 40.0


def test_untuned_buffer_throttles():
    """The paper's key MPTCP observation: default buffers + a lossy slow
    path give marginal gains over the better path (Section 6)."""
    _, _, tuned = run_mptcp(
        [dict(rate=100.0, delay_ms=20.0), dict(rate=50.0, delay_ms=60.0, loss=0.01, burst=20.0)],
        buffer_segments=8192,
        seed=11,
    )
    _, _, untuned = run_mptcp(
        [dict(rate=100.0, delay_ms=20.0), dict(rate=50.0, delay_ms=60.0, loss=0.01, burst=20.0)],
        buffer_segments=48,
        seed=11,
    )
    assert untuned < 0.6 * tuned


def test_in_order_meta_delivery():
    conn, recv, _ = run_mptcp(
        [dict(rate=60.0, delay_ms=20.0), dict(rate=30.0, delay_ms=50.0)],
        buffer_segments=4096,
    )
    assert recv.bytes_received == recv.meta_rcv_next * 1500


def test_no_data_gap_under_loss():
    """Every delivered byte is the in-order prefix even with loss and
    reinjection."""
    conn, recv, _ = run_mptcp(
        [
            dict(rate=60.0, delay_ms=20.0, loss=0.005, burst=10.0),
            dict(rate=30.0, delay_ms=50.0, loss=0.02, burst=20.0),
        ],
        buffer_segments=4096,
        seed=3,
    )
    assert recv.meta_rcv_next > 0
    assert recv.bytes_received == recv.meta_rcv_next * 1500


def test_reinjection_on_dead_subflow():
    """If one path dies mid-transfer, its data is reinjected and the
    connection keeps flowing on the surviving path."""
    from repro.conditions import LinkConditions, outage

    sim = Simulator()
    good = fixed_path(sim, rate=50.0, delay_ms=20.0, seed=5)
    dying_samples = [
        LinkConditions(float(t), 50.0, 5.0, 40.0, 0.0) if t < 5 else outage(float(t))
        for t in range(30)
    ]
    dying = Path.from_conditions(sim, dying_samples, np.random.default_rng(6))
    conn, recv = open_mptcp_connection(sim, [good, dying], buffer_segments=4096)
    conn.start()
    sim.run(until_s=30.0)
    mbps = recv.bytes_received * 8 / 1e6 / 30.0
    assert mbps > 25.0  # the good path keeps most of its capacity
    assert conn.stats.reinjections > 0
    assert recv.bytes_received == recv.meta_rcv_next * 1500


def test_schedulers_all_functional():
    for name in ("blest", "minrtt", "roundrobin"):
        _, _, mbps = run_mptcp(
            [dict(rate=60.0, delay_ms=20.0), dict(rate=30.0, delay_ms=60.0)],
            buffer_segments=8192,
            scheduler=name,
        )
        assert mbps > 50.0, name


def test_blest_beats_roundrobin_with_tiny_buffer():
    """BLEST's purpose: avoid slow-path sends that would stall the shared
    window.  With a small buffer and asymmetric paths it should win."""
    spec = [dict(rate=100.0, delay_ms=10.0), dict(rate=10.0, delay_ms=150.0)]
    _, _, blest = run_mptcp(spec, buffer_segments=64, scheduler="blest", seed=7)
    _, _, rr = run_mptcp(spec, buffer_segments=64, scheduler="roundrobin", seed=7)
    assert blest > rr


def test_requires_at_least_one_path():
    sim = Simulator()
    with pytest.raises(ValueError):
        open_mptcp_connection(sim, [])


def test_stats_aggregate():
    conn, _, _ = run_mptcp(
        [dict(rate=50.0, delay_ms=20.0, loss=0.01, burst=10.0)],
        buffer_segments=4096,
        seed=9,
    )
    assert conn.stats.segments_sent > 0
    assert conn.stats.retransmissions >= 0
    assert 0.0 <= conn.stats.retransmission_rate < 0.5
