"""Fault events, schedules, generation, and the channel injector."""

import pytest

import repro.core.dataset as dataset_module
from repro.conditions import LinkConditions
from repro.faults import (
    CellSectorOutage,
    FaultInjector,
    FaultSchedule,
    GatewayFailure,
    ObstructionBurst,
    SatelliteOutage,
    WeatherFront,
    event_from_dict,
    generate_schedule,
)
from repro.faults.events import (
    CELLULAR_NETWORKS,
    FaultEffect,
    NETWORKS,
    STARLINK_NETWORKS,
)
from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint

POSITION = GeoPoint(40.0, -95.0)


def test_network_constants_match_dataset():
    # faults duplicates these to avoid a circular import; keep in sync.
    assert NETWORKS == dataset_module.NETWORKS
    assert STARLINK_NETWORKS == dataset_module.STARLINK_NETWORKS
    assert CELLULAR_NETWORKS == dataset_module.CELLULAR_NETWORKS


def test_event_window_validation():
    with pytest.raises(ValueError):
        SatelliteOutage(start_s=-1.0, end_s=5.0)
    with pytest.raises(ValueError):
        SatelliteOutage(start_s=10.0, end_s=10.0)
    with pytest.raises(ValueError):
        ObstructionBurst(start_s=0.0, end_s=5.0, severity=0.0)
    with pytest.raises(ValueError):
        GatewayFailure(start_s=0.0, end_s=5.0, capacity_factor=1.5)
    with pytest.raises(ValueError):
        CellSectorOutage(start_s=0.0, end_s=5.0, carrier="RM")


def test_satellite_outage_targets_only_starlink():
    event = SatelliteOutage(start_s=10.0, end_s=20.0)
    assert event.effect_on("MOB", 0, 15.0, POSITION).blackout
    assert event.effect_on("RM", 0, 15.0, POSITION).blackout
    assert event.effect_on("VZ", 0, 15.0, POSITION) is None
    # Outside the window / on the wrong drive: inactive.
    assert event.effect_on("MOB", 0, 25.0, POSITION) is None
    pinned = SatelliteOutage(start_s=10.0, end_s=20.0, drive_id=2)
    assert pinned.effect_on("MOB", 0, 15.0, POSITION) is None
    assert pinned.effect_on("MOB", 2, 15.0, POSITION) is not None


def test_cell_sector_outage_targets_one_carrier():
    event = CellSectorOutage(start_s=0.0, end_s=60.0, carrier="TM")
    assert event.effect_on("TM", 0, 30.0, POSITION).blackout
    assert event.effect_on("ATT", 0, 30.0, POSITION) is None
    assert event.effect_on("MOB", 0, 30.0, POSITION) is None


def test_weather_front_geography_and_drift():
    event = WeatherFront(
        start_s=0.0,
        end_s=3600.0,
        center=POSITION,
        radius_km=50.0,
        speed_kmh=100.0,
        bearing_deg=90.0,
    )
    inside = event.effect_on("MOB", 0, 0.0, POSITION)
    assert inside is not None and inside.capacity_factor < 1.0
    far = GeoPoint(40.0, -90.0)  # ~425 km east
    assert event.effect_on("MOB", 0, 0.0, far) is None
    # After ~3.5 h the front would have drifted ~350 km east; by the end
    # of its window it has moved off the origin.
    assert event.center_at(3600.0).lon_deg > POSITION.lon_deg
    # Cellular links only see the mild attenuation.
    cell = event.effect_on("VZ", 0, 0.0, POSITION)
    assert cell.capacity_factor == pytest.approx(event.cellular_capacity_factor)


def test_weather_front_without_center_is_region_wide():
    event = WeatherFront(start_s=0.0, end_s=10.0)
    for lat, lon in ((0.0, 0.0), (45.0, -120.0)):
        assert event.effect_on("RM", 0, 5.0, GeoPoint(lat, lon)) is not None


def test_compose_blackout_wins_and_factors_multiply():
    combined = FaultSchedule.compose(
        [
            FaultEffect(capacity_factor=0.5, extra_loss=0.01, extra_rtt_ms=10.0),
            FaultEffect(capacity_factor=0.5, extra_loss=0.02, extra_rtt_ms=5.0),
        ]
    )
    assert not combined.blackout
    assert combined.capacity_factor == pytest.approx(0.25)
    assert combined.extra_loss == pytest.approx(0.03)
    assert combined.extra_rtt_ms == pytest.approx(15.0)
    assert FaultSchedule.compose(
        [FaultEffect(blackout=True), FaultEffect(capacity_factor=0.9)]
    ).blackout


def test_schedule_json_roundtrip_and_fingerprint():
    schedule = generate_schedule(seed=11, num_drives=3, drive_duration_s=1800.0)
    clone = FaultSchedule.from_json(schedule.to_json())
    assert clone == schedule
    assert clone.fingerprint() == schedule.fingerprint()
    other = generate_schedule(seed=12, num_drives=3, drive_duration_s=1800.0)
    assert other.fingerprint() != schedule.fingerprint()


def test_generate_schedule_deterministic():
    a = generate_schedule(seed=4, num_drives=2, drive_duration_s=3600.0)
    b = generate_schedule(seed=4, num_drives=2, drive_duration_s=3600.0)
    assert a == b
    assert len(a) > 0
    counts = a.counts_by_kind()
    assert sum(counts.values()) == len(a)


def test_generate_schedule_validation():
    with pytest.raises(ValueError):
        generate_schedule(seed=0, num_drives=0, drive_duration_s=100.0)
    with pytest.raises(ValueError):
        generate_schedule(seed=0, num_drives=1, drive_duration_s=0.0)
    with pytest.raises(ValueError):
        generate_schedule(seed=0, num_drives=1, drive_duration_s=100.0, intensity=-1.0)


def test_event_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError):
        event_from_dict({"kind": "alien_invasion", "start_s": 0.0, "end_s": 1.0})


class _FixedChannel:
    """Deterministic stand-in for a Starlink/cellular channel."""

    def __init__(self, downlink_mbps=100.0, loss_rate=0.0):
        self.downlink_mbps = downlink_mbps
        self.loss_rate = loss_rate
        self.samples_taken = 0
        self.resets = 0

    def sample(self, time_s, position, speed_kmh, area):
        self.samples_taken += 1
        return LinkConditions(
            time_s=time_s,
            downlink_mbps=self.downlink_mbps,
            uplink_mbps=10.0,
            rtt_ms=50.0,
            loss_rate=self.loss_rate,
            loss_burst=8.0,
        )

    def reset(self):
        self.resets += 1


def _inject(schedule, network="MOB", drive_id=0):
    channel = _FixedChannel()
    return channel, FaultInjector(channel, network, schedule, drive_id=drive_id)


def test_injector_blackout_skips_channel_and_counts():
    schedule = FaultSchedule((SatelliteOutage(start_s=5.0, end_s=8.0),))
    channel, injector = _inject(schedule)
    for t in range(10):
        conditions = injector.sample(float(t), POSITION, 50.0, AreaType.RURAL)
        if 5 <= t < 8:
            assert conditions.is_outage
        else:
            assert not conditions.is_outage
    # Blackout seconds never touch the wrapped channel.
    assert channel.samples_taken == 7
    assert injector.outage_seconds == 3
    assert injector.fault_seconds == {"satellite_outage": 3}


def test_injector_degrades_without_blackout():
    schedule = FaultSchedule(
        (GatewayFailure(start_s=0.0, end_s=10.0, capacity_factor=0.5, extra_rtt_ms=40.0),)
    )
    _, injector = _inject(schedule)
    conditions = injector.sample(1.0, POSITION, 50.0, AreaType.RURAL)
    assert conditions.downlink_mbps == pytest.approx(50.0)
    assert conditions.rtt_ms == pytest.approx(90.0)
    assert not conditions.is_outage
    # Off-target network passes through untouched.
    _, cell_injector = _inject(schedule, network="ATT")
    untouched = cell_injector.sample(1.0, POSITION, 50.0, AreaType.RURAL)
    assert untouched.downlink_mbps == pytest.approx(100.0)
    assert cell_injector.fault_seconds == {}


def test_injector_reset_forwards_to_channel():
    channel, injector = _inject(FaultSchedule())
    injector.reset()
    assert channel.resets == 1
