"""The durable artifact layer: shards, the shard store, and the cache.

The contract under test: artifacts are pure functions of content.  A
digest-chained shard detects *any* single-byte change (property-tested
below); the shard store recovers per drive, never all-or-nothing; the
content-addressed cache can only save work, never corrupt a dataset;
and every layout — monolithic, sharded, cached, resumed, parallel —
produces byte-identical datasets.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.campaign import Campaign, CampaignConfig, _load_checkpoint
from repro.obs import ObsRecorder
from repro.resilience import CheckpointCorruptError
from repro.store import (
    DriveCache,
    MANIFEST_NAME,
    ShardCorruptError,
    ShardStore,
    ShardWriter,
    build_shard_bytes,
    read_shard,
    salvage_shard,
    shard_name,
    verify_shard,
)


def _config(seed=5, drives=2, **overrides):
    base = dict(
        seed=seed,
        num_interstate_drives=drives,
        num_city_drives=0,
        max_drive_seconds=240.0,
        test_duration_s=30.0,
        window_period_s=40.0,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _dir_bytes(root) -> dict[str, bytes]:
    out = {}
    for name in sorted(os.listdir(root)):
        with open(os.path.join(root, name), "rb") as handle:
            out[name] = handle.read()
    return out


def _dataset_bytes(dataset, path) -> bytes:
    dataset.save_json(path)
    return path.read_bytes()


# -- shard round-trip ----------------------------------------------------

_RECORDS = [{"a": 1, "z": [1.5, "x"]}, {"b": {"nested": True}}, {"c": None}]
_META = {"trace_minutes": 2.5, "distance_km": 10.0}


def test_shard_roundtrip_via_build(tmp_path):
    path = tmp_path / "drive-00003.jsonl"
    data, head = build_shard_bytes("fp", 3, _RECORDS, _META)
    path.write_bytes(data)
    shard = read_shard(path, fingerprint="fp", drive_id=3)
    assert shard.fingerprint == "fp"
    assert shard.drive_id == 3
    assert shard.records == _RECORDS
    assert shard.meta == _META
    assert shard.head == head
    assert verify_shard(path)


def test_shard_writer_matches_build_bytes(tmp_path):
    path = tmp_path / "drive-00003.jsonl"
    writer = ShardWriter(path, "fp", 3)
    for record in _RECORDS:
        writer.append(record)
    head = writer.finish(dict(_META))
    expected, expected_head = build_shard_bytes("fp", 3, _RECORDS, _META)
    assert path.read_bytes() == expected
    assert head == expected_head
    assert not os.path.exists(f"{path}.wal")


def test_shard_writer_abort_removes_wal(tmp_path):
    path = tmp_path / "drive-00000.jsonl"
    writer = ShardWriter(path, "fp", 0)
    writer.append({"r": 1})
    writer.abort()
    assert list(tmp_path.iterdir()) == []


def test_read_shard_rejects_structural_damage(tmp_path):
    data, _ = build_shard_bytes("fp", 0, _RECORDS, _META)
    lines = data.decode().splitlines()

    def write(content: bytes):
        path = tmp_path / "s.jsonl"
        path.write_bytes(content)
        return path

    # Missing final newline (torn write).
    with pytest.raises(ShardCorruptError, match="final newline"):
        read_shard(write(data[:-1]))
    # Missing end line.
    with pytest.raises(ShardCorruptError, match="missing end line"):
        read_shard(write(("\n".join(lines[:-1]) + "\n").encode()))
    # Content after the end line.
    with pytest.raises(ShardCorruptError, match="after the end"):
        read_shard(write(data + (lines[1] + "\n").encode()))
    # Non-canonical bytes that parse to the identical JSON value.
    spaced = lines[1].replace(":", ": ", 1)
    assert json.loads(spaced) == json.loads(lines[1])
    doctored = "\n".join([lines[0], spaced, *lines[2:]]) + "\n"
    with pytest.raises(ShardCorruptError, match="canonical"):
        read_shard(write(doctored.encode()))
    # Wrong drive id is damage...
    with pytest.raises(ShardCorruptError, match="names drive"):
        read_shard(write(data), drive_id=7)
    # ...but a different fingerprint is operator error.
    with pytest.raises(ValueError, match="different campaign config"):
        read_shard(write(data), fingerprint="other")


# -- salvage (satellite: 0-byte and mid-record truncation) ---------------


def test_salvage_zero_byte_shard(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_bytes(b"")
    out = salvage_shard(path)
    assert out.records == []
    assert not out.complete
    assert out.reason == "empty file"


def test_salvage_mid_record_truncated_shard(tmp_path):
    data, _ = build_shard_bytes("fp", 2, _RECORDS, _META)
    lines = data.decode().splitlines()
    # Cut through the middle of the third record's line: header and the
    # first two records remain complete and chain-valid.
    keep = "\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2]
    path = tmp_path / "s.jsonl"
    path.write_text(keep)
    out = salvage_shard(path)
    assert out.fingerprint == "fp"
    assert out.drive_id == 2
    assert out.records == _RECORDS[:2]
    assert not out.complete
    assert "torn" in out.reason


def test_salvage_complete_shard(tmp_path):
    data, _ = build_shard_bytes("fp", 2, _RECORDS, _META)
    path = tmp_path / "s.jsonl"
    path.write_bytes(data)
    out = salvage_shard(path)
    assert out.complete
    assert out.records == _RECORDS
    assert out.meta == _META


def test_zero_byte_monolithic_checkpoint_detected(tmp_path):
    path = tmp_path / "ck.json"
    path.write_bytes(b"")
    with pytest.raises(CheckpointCorruptError, match="not valid JSON"):
        _load_checkpoint(path, "fp")


def test_campaign_survives_zero_byte_checkpoint(tmp_path):
    ck = tmp_path / "ck.json"
    ck.write_bytes(b"")
    campaign = Campaign(_config(drives=1))
    dataset = campaign.run(checkpoint_path=ck)
    assert campaign.report.resilience["integrity_failures"] == 1
    assert campaign.report.resilience["drives_salvaged"] == 0
    assert (tmp_path / "ck.json.corrupt").exists()
    clean = Campaign(_config(drives=1)).run()
    assert _dataset_bytes(dataset, tmp_path / "a.json") == _dataset_bytes(
        clean, tmp_path / "b.json"
    )


# -- property: any single-byte flip is detected --------------------------

_BASE_BYTES, _BASE_HEAD = build_shard_bytes("fp", 3, _RECORDS, _META)


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    pos=st.integers(min_value=0, max_value=len(_BASE_BYTES) - 1),
    mask=st.integers(min_value=1, max_value=255),
)
def test_any_single_byte_flip_fails_verification(tmp_path, pos, mask):
    flipped = bytearray(_BASE_BYTES)
    flipped[pos] ^= mask
    path = tmp_path / "flipped.jsonl"
    path.write_bytes(bytes(flipped))
    assert not verify_shard(path)


# -- ShardStore ----------------------------------------------------------


def _payloads(n=2):
    return {
        i: {
            "records": [{"r": i, "v": j} for j in range(3)],
            "trace_minutes": float(i),
            "distance_km": 1.5 * i,
        }
        for i in range(n)
    }


def test_store_commit_and_load_roundtrip(tmp_path):
    store = ShardStore(tmp_path / "store", "fp")
    store.commit(_payloads(), lambda records: records)
    loaded, recovery = ShardStore(tmp_path / "store", "fp").load()
    assert recovery.clean
    assert set(loaded) == {0, 1}
    assert loaded[1]["records"] == [{"r": 1, "v": j} for j in range(3)]
    assert loaded[1]["trace_minutes"] == 1.0
    index = store.artifact_index()
    assert index["format"] == "jsonl"
    assert set(index["shards"]) == {"0", "1"}


def test_store_rejects_other_fingerprint(tmp_path):
    ShardStore(tmp_path / "store", "fp").commit(_payloads(), lambda r: r)
    with pytest.raises(ValueError, match="different campaign config"):
        ShardStore(tmp_path / "store", "other").load()


def test_store_quarantines_tampered_shard_only(tmp_path):
    root = tmp_path / "store"
    ShardStore(root, "fp").commit(_payloads(), lambda r: r)
    victim = root / shard_name(1)
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0x20
    victim.write_bytes(bytes(blob))

    store = ShardStore(root, "fp")
    loaded, recovery = store.load()
    assert set(loaded) == {0}  # per-drive recovery, not all-or-nothing
    assert recovery.shards_quarantined == [str(victim) + ".corrupt"]
    assert not victim.exists()
    # Re-committing the full payload set heals the store.
    store.commit(_payloads(), lambda r: r)
    healed, recovery = ShardStore(root, "fp").load()
    assert recovery.clean
    assert set(healed) == {0, 1}


def test_store_quarantines_tampered_manifest(tmp_path):
    root = tmp_path / "store"
    ShardStore(root, "fp").commit(_payloads(), lambda r: r)
    manifest = root / MANIFEST_NAME
    raw = json.loads(manifest.read_text())
    raw["drives"]["0"]["records"] = 99  # edit after digesting
    manifest.write_text(json.dumps(raw))

    loaded, recovery = ShardStore(root, "fp").load()
    assert loaded == {}
    assert recovery.manifest_quarantined == str(manifest) + ".corrupt"
    assert "content digest" in recovery.manifest_error


def test_store_sweeps_and_salvages_leftover_wal(tmp_path):
    root = tmp_path / "store"
    store = ShardStore(root, "fp")
    store.commit(_payloads(1), lambda r: r)
    writer = store.begin_drive(5)
    writer.append({"r": 5, "v": 0})
    writer.append({"r": 5, "v": 1})
    writer._handle.close()  # crash: never finished, never renamed

    loaded, recovery = ShardStore(root, "fp").load()
    assert set(loaded) == {0}
    assert recovery.wal_records_salvaged == 2
    assert recovery.wals_discarded == 1
    assert not (root / (shard_name(5) + ".wal")).exists()


# -- campaign integration ------------------------------------------------


def test_jsonl_store_byte_identical_serial_vs_parallel(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    ds_serial = Campaign(_config(artifact_format="jsonl")).run(
        checkpoint_path=serial_dir
    )
    ds_parallel = Campaign(_config(artifact_format="jsonl", workers=2)).run(
        checkpoint_path=parallel_dir
    )
    assert _dir_bytes(serial_dir) == _dir_bytes(parallel_dir)
    assert _dataset_bytes(ds_serial, tmp_path / "a.json") == _dataset_bytes(
        ds_parallel, tmp_path / "b.json"
    )


def test_jsonl_resume_converges_byte_identically(tmp_path, monkeypatch):
    clean_dir = tmp_path / "clean"
    ds_clean = Campaign(_config(artifact_format="jsonl")).run(
        checkpoint_path=clean_dir
    )

    broken_dir = tmp_path / "broken"
    original = Campaign._simulate_drive

    def sabotage(self, drive_id, route):
        if drive_id == 1:
            raise RuntimeError("injected mid-campaign crash")
        return original(self, drive_id, route)

    monkeypatch.setattr(Campaign, "_simulate_drive", sabotage)
    first = Campaign(_config(artifact_format="jsonl"))
    first.run(checkpoint_path=broken_dir)
    assert first.report.drives_failed == 1

    monkeypatch.setattr(Campaign, "_simulate_drive", original)
    second = Campaign(_config(artifact_format="jsonl"))
    ds_resumed = second.run(checkpoint_path=broken_dir)
    assert second.report.drives_resumed == 1
    assert _dir_bytes(clean_dir) == _dir_bytes(broken_dir)
    assert _dataset_bytes(ds_clean, tmp_path / "a.json") == _dataset_bytes(
        ds_resumed, tmp_path / "b.json"
    )


def test_legacy_monolithic_checkpoint_migrates_to_store(tmp_path):
    ck = tmp_path / "ck.json"
    ds_legacy = Campaign(_config()).run(checkpoint_path=ck)
    assert ck.is_file()

    migrated = Campaign(_config(artifact_format="jsonl"))
    ds_migrated = migrated.run(checkpoint_path=ck)
    assert migrated.report.drives_resumed == 2  # nothing recomputed
    assert ck.is_dir()
    assert (ck / MANIFEST_NAME).exists()
    assert (tmp_path / "ck.json.legacy.json").exists()
    assert _dataset_bytes(ds_legacy, tmp_path / "a.json") == _dataset_bytes(
        ds_migrated, tmp_path / "b.json"
    )


def test_store_directory_resumes_even_under_json_format(tmp_path):
    ck = tmp_path / "ck"
    Campaign(_config(artifact_format="jsonl")).run(checkpoint_path=ck)
    # A store, once sharded, stays readable whatever the config says.
    resumed = Campaign(_config(artifact_format="json"))
    resumed.run(checkpoint_path=ck)
    assert resumed.report.drives_resumed == 2


def test_run_manifest_carries_shard_digests(tmp_path):
    ck = tmp_path / "ck"
    campaign = Campaign(
        _config(drives=1, artifact_format="jsonl"), recorder=ObsRecorder()
    )
    campaign.run(checkpoint_path=ck)
    artifacts = campaign.manifest.artifacts
    assert artifacts["format"] == "jsonl"
    on_disk = read_shard(ck / shard_name(0))
    assert artifacts["shards"]["0"]["head"] == on_disk.head
    assert artifacts["shards"]["0"]["records"] == len(on_disk.records)
    # Artifacts are pure content: they survive the deterministic view.
    assert campaign.manifest.deterministic_dict()["artifacts"] == artifacts


# -- the content-addressed cache -----------------------------------------


def test_cache_second_run_recomputes_zero_drives(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    first = Campaign(_config(cache_dir=str(cache_dir)))
    ds_first = first.run()

    def explode(self, drive_id, route):
        raise AssertionError(f"drive {drive_id} recomputed despite cache")

    monkeypatch.setattr(Campaign, "_simulate_drive", explode)
    second = Campaign(_config(cache_dir=str(cache_dir)))
    ds_second = second.run()
    assert _dataset_bytes(ds_first, tmp_path / "a.json") == _dataset_bytes(
        ds_second, tmp_path / "b.json"
    )
    # Cache restores are not checkpoint resumes.
    assert second.report.drives_resumed == 0
    assert second.report.drives_completed == 2


def test_cache_tampered_entry_quarantined_and_recomputed(tmp_path):
    cache_dir = tmp_path / "cache"
    ds_first = Campaign(_config(cache_dir=str(cache_dir))).run()

    fingerprint = _config().fingerprint()
    entry = DriveCache(cache_dir).entry_path(fingerprint, 0)
    blob = bytearray(open(entry, "rb").read())
    blob[len(blob) // 2] ^= 0x01
    with open(entry, "wb") as handle:
        handle.write(bytes(blob))

    second = Campaign(_config(cache_dir=str(cache_dir)))
    ds_second = second.run()
    # Never silently served: quarantined, recomputed, and re-cached.
    assert os.path.exists(entry + ".corrupt")
    assert second.report.resilience["integrity_failures"] == 1
    assert verify_shard(entry, fingerprint=fingerprint, drive_id=0)
    assert _dataset_bytes(ds_first, tmp_path / "a.json") == _dataset_bytes(
        ds_second, tmp_path / "b.json"
    )


def test_cache_different_fingerprints_do_not_collide(tmp_path):
    cache = DriveCache(tmp_path / "cache")
    cache.put("fp-a", 0, [{"r": 1}], {"m": 1})
    payload, quarantined = cache.get("fp-b", 0)
    assert payload is None and quarantined is None  # plain miss
    payload, quarantined = cache.get("fp-a", 0)
    assert quarantined is None
    assert payload == {"m": 1, "records": [{"r": 1}]}


def test_cache_entry_under_wrong_fingerprint_dir_quarantined(tmp_path):
    cache = DriveCache(tmp_path / "cache")
    cache.put("fp-a", 0, [{"r": 1}], {"m": 1})
    # Plant fp-a's (internally valid) entry under fp-b's address.
    os.makedirs(os.path.dirname(cache.entry_path("fp-b", 0)))
    os.rename(cache.entry_path("fp-a", 0), cache.entry_path("fp-b", 0))
    payload, quarantined = cache.get("fp-b", 0)
    assert payload is None
    assert quarantined == cache.entry_path("fp-b", 0) + ".corrupt"
