"""Spherical geometry: distances, bearings, ECEF."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.coords import (
    GeoPoint,
    destination_point,
    geodetic_to_ecef_km,
    haversine_km,
    initial_bearing_deg,
    interpolate,
)
from repro.units import EARTH_RADIUS_KM

lat_st = st.floats(min_value=-85.0, max_value=85.0)
lon_st = st.floats(min_value=-179.0, max_value=179.0)


def test_geopoint_validation():
    with pytest.raises(ValueError):
        GeoPoint(91.0, 0.0)
    with pytest.raises(ValueError):
        GeoPoint(0.0, 200.0)


def test_haversine_zero():
    p = GeoPoint(45.0, -93.0)
    assert haversine_km(p, p) == 0.0


def test_haversine_known_distance():
    # Minneapolis to Chicago is ~570 km.
    msp = GeoPoint(44.98, -93.26)
    chi = GeoPoint(41.88, -87.63)
    assert haversine_km(msp, chi) == pytest.approx(570.0, rel=0.05)


def test_haversine_symmetric():
    a, b = GeoPoint(44.0, -93.0), GeoPoint(42.0, -87.0)
    assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


@given(lat_st, lon_st, st.floats(min_value=0.1, max_value=500.0),
       st.floats(min_value=0.0, max_value=359.9))
def test_destination_distance_consistency(lat, lon, dist, bearing):
    origin = GeoPoint(lat, lon)
    dest = destination_point(origin, bearing, dist)
    assert haversine_km(origin, dest) == pytest.approx(dist, rel=0.01)


def test_bearing_north():
    a = GeoPoint(40.0, -90.0)
    b = GeoPoint(41.0, -90.0)
    assert initial_bearing_deg(a, b) == pytest.approx(0.0, abs=0.5)


def test_bearing_east():
    a = GeoPoint(0.0, 0.0)
    b = GeoPoint(0.0, 1.0)
    assert initial_bearing_deg(a, b) == pytest.approx(90.0, abs=0.5)


def test_ecef_surface_radius():
    p = GeoPoint(37.0, -122.0)
    assert np.linalg.norm(geodetic_to_ecef_km(p)) == pytest.approx(
        EARTH_RADIUS_KM
    )


def test_ecef_altitude():
    p = GeoPoint(0.0, 0.0)
    v = geodetic_to_ecef_km(p, altitude_km=550.0)
    assert np.linalg.norm(v) == pytest.approx(EARTH_RADIUS_KM + 550.0)
    # At (0, 0) everything is on the x axis.
    assert v[1] == pytest.approx(0.0, abs=1e-6)
    assert v[2] == pytest.approx(0.0, abs=1e-6)


def test_interpolate_endpoints():
    a, b = GeoPoint(40.0, -90.0), GeoPoint(41.0, -89.0)
    assert interpolate(a, b, 0.0) == a
    assert interpolate(a, b, 1.0).lat_deg == pytest.approx(41.0)


def test_interpolate_midpoint():
    a, b = GeoPoint(40.0, -90.0), GeoPoint(42.0, -88.0)
    mid = interpolate(a, b, 0.5)
    assert mid.lat_deg == pytest.approx(41.0)
    assert mid.lon_deg == pytest.approx(-89.0)


def test_interpolate_bad_fraction():
    a, b = GeoPoint(40.0, -90.0), GeoPoint(41.0, -89.0)
    with pytest.raises(ValueError):
        interpolate(a, b, 1.5)


def test_interpolate_across_dateline():
    a, b = GeoPoint(0.0, 179.5), GeoPoint(0.0, -179.5)
    mid = interpolate(a, b, 0.5)
    assert abs(mid.lon_deg) == pytest.approx(180.0, abs=0.01)


@given(lat_st, lon_st)
def test_ecef_round_latitude_sign(lat, lon):
    v = geodetic_to_ecef_km(GeoPoint(lat, lon))
    assert math.copysign(1.0, v[2]) == math.copysign(1.0, lat) or lat == 0.0
