"""Path construction and wiring."""

import numpy as np
import pytest

from repro.conditions import LinkConditions, outage
from repro.net import FixedConditions, Path, Simulator
from repro.net.packet import Packet


def test_from_conditions_buffer_default_skips_outages():
    sim = Simulator()
    samples = [outage(0.0)] + [
        LinkConditions(float(t), 100.0, 10.0, 50.0, 0.0) for t in range(1, 5)
    ]
    path = Path.from_conditions(sim, samples, np.random.default_rng(0))
    # ~6x BDP of the live seconds (100 Mbps, 50 ms => 625 kB BDP).
    assert path.forward_link.queue.capacity_bytes >= 6 * 500_000


def test_data_and_acks_use_opposite_directions():
    sim = Simulator()
    samples = [LinkConditions(0.0, 80.0, 8.0, 20.0, 0.0)]
    path = Path.from_conditions(sim, samples, np.random.default_rng(0))
    assert path.forward_link.conditions.rate_bps(0.0) == 80e6
    assert path.reverse_link.conditions.rate_bps(0.0) == 8e6


def test_uplink_test_swaps_directions():
    sim = Simulator()
    samples = [LinkConditions(0.0, 80.0, 8.0, 20.0, 0.0)]
    path = Path.from_conditions(
        sim, samples, np.random.default_rng(0), downlink=False
    )
    assert path.forward_link.conditions.rate_bps(0.0) == 8e6


def test_connect_and_send():
    sim = Simulator()
    fwd = FixedConditions(10.0, 5.0)
    rev = FixedConditions(1.0, 5.0)
    path = Path(sim, fwd, rev, 100_000, np.random.default_rng(0))
    got = {"data": 0, "ack": 0}
    path.connect(
        lambda p: got.__setitem__("data", got["data"] + 1),
        lambda p: got.__setitem__("ack", got["ack"] + 1),
    )
    path.send_data(Packet(flow_id=0, size_bytes=1000, seq=0))
    path.send_ack(Packet(flow_id=0, size_bytes=60, ack=1, is_ack=True))
    sim.run()
    assert got == {"data": 1, "ack": 1}


def test_from_links_wraps_existing_links():
    sim = Simulator()
    fwd_link = object.__new__(type("L", (), {}))  # placeholder duck
    # Use real links for a meaningful test.
    from repro.net.link import Link

    fwd = Link(sim, FixedConditions(10.0, 1.0), 10_000, np.random.default_rng(0))
    rev = Link(sim, FixedConditions(1.0, 1.0), 10_000, np.random.default_rng(0))
    path = Path.from_links(sim, fwd, rev, name="custom")
    assert path.forward_link is fwd
    assert path.reverse_link is rev
    assert path.name == "custom"


def test_send_before_connect_raises():
    sim = Simulator()
    path = Path(
        sim,
        FixedConditions(10.0, 1.0),
        FixedConditions(1.0, 1.0),
        10_000,
        np.random.default_rng(0),
    )
    with pytest.raises(RuntimeError):
        path.send_data(Packet(flow_id=0, size_bytes=100))
