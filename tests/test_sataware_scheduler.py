"""The SatAware MPTCP scheduler (LEO-reconfiguration-aware extension)."""

import numpy as np
import pytest

from repro.conditions import LinkConditions, outage
from repro.net import FixedConditions, Path, Simulator
from repro.net.link import bdp_bytes
from repro.transport.mptcp import SatAware, make_scheduler, open_mptcp_connection


def test_factory_knows_sataware():
    assert isinstance(make_scheduler("sataware"), SatAware)


def test_guard_window_validation():
    with pytest.raises(ValueError):
        SatAware(interval_s=0.0)
    with pytest.raises(ValueError):
        SatAware(interval_s=1.0, guard_before_s=0.6, guard_after_s=0.6)


def test_guard_window_phase():
    sched = SatAware(interval_s=15.0, guard_before_s=1.0, guard_after_s=0.5)
    assert sched._in_guard_window(14.5)
    assert sched._in_guard_window(15.2)
    assert sched._in_guard_window(0.3)
    assert not sched._in_guard_window(7.0)
    assert not sched._in_guard_window(13.9)


def starlink_like_samples(seconds=90):
    """Good capacity except a gap after every 15 s boundary."""
    samples = []
    for t in range(seconds):
        if t % 15 == 0:
            samples.append(outage(float(t)))
        else:
            samples.append(
                LinkConditions(float(t), 150.0, 15.0, 60.0, 0.002, loss_burst=60.0)
            )
    return samples


def run_with_scheduler(scheduler, duration=90.0, seed=5):
    sim = Simulator()
    sat = Path.from_conditions(
        sim, starlink_like_samples(), np.random.default_rng(seed), name="sat"
    )
    cell_fwd = FixedConditions(80.0, 25.0)
    cell_rev = FixedConditions(8.0, 25.0)
    cell = Path(
        sim, cell_fwd, cell_rev,
        max(6 * bdp_bytes(80.0, 50.0), 64 * 1500),
        np.random.default_rng(seed + 1),
        name="cell",
    )
    conn, recv = open_mptcp_connection(
        sim, [sat, cell], scheduler=scheduler, buffer_segments=8192
    )
    conn.start()
    sim.run(until_s=duration)
    return recv.bytes_received * 8 / 1e6 / duration


def test_sataware_competitive_with_blest():
    """On a path pair with periodic satellite gaps, guarding the boundary
    must not cost aggregate throughput (and usually helps smoothness)."""
    blest = run_with_scheduler("blest")
    sataware = run_with_scheduler("sataware")
    assert sataware > 0.85 * blest


def test_sataware_schedules_on_cellular_during_guard():
    sim = Simulator()
    scheduler = SatAware(interval_s=15.0, guard_before_s=1.0, guard_after_s=1.0)

    class FakeSubflow:
        def __init__(self, sid, rtt):
            self.subflow_id = sid
            self.smoothed_rtt_s = rtt

            class CC:
                cwnd = 10.0

            self.cc = CC()

    class FakeConnection:
        def __init__(self, now):
            self.sim = type("S", (), {"now": now})()
            self.subflows = [FakeSubflow(0, 0.06), FakeSubflow(1, 0.05)]

        def send_window_left(self):
            return 1 << 20

    sat, cell = FakeSubflow(0, 0.06), FakeSubflow(1, 0.05)
    # Mid-interval: both are candidates, fastest wins.
    conn = FakeConnection(now=7.0)
    conn.subflows = [sat, cell]
    assert scheduler.pick([sat, cell], conn) is cell
    # In the guard window with only the satellite available: hold.
    conn = FakeConnection(now=14.5)
    conn.subflows = [sat, cell]
    assert scheduler.pick([sat], conn) is None
    # In the guard window with both: cellular.
    assert scheduler.pick([sat, cell], conn) is cell
