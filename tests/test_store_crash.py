"""Seeded crash injection: SIGKILL at every commit-protocol boundary.

The harness runs one small campaign to completion under a recording
crash hook, capturing the exact ordered sequence of commit-protocol
boundaries the run crosses (WAL appends, fsyncs, renames, directory
syncs — for shards, the store manifest, the dataset, and the run
manifest).  A seeded RNG then picks kill points covering *every
distinct boundary label* plus extra random positions (at least
:data:`MIN_KILLS` total).  For each kill point a forked child re-runs
the campaign with a hook that SIGKILLs the process at that boundary;
a second child then resumes from whatever the kill left on disk.

The claim being proven: **resume converges byte-identically** — after
any crash, the resumed run's dataset, store directory (manifest +
shards), and deterministic obs manifest equal the clean run's, byte
for byte.

The seed is printed on every run and can be pinned with
``REPRO_CRASH_SEED`` to replay a failure.
"""

import json
import multiprocessing
import os
import random
import signal

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.obs import ObsRecorder
from repro.obs.manifest import RunManifest
from repro.store import commit

#: Minimum number of seeded SIGKILL points per scenario (the sharded
#: store exposes well over this many boundaries in even a tiny run).
MIN_KILLS = 25

#: Default seed for the kill-point RNG; override with REPRO_CRASH_SEED.
DEFAULT_SEED = 20260809

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash harness requires fork"
)


def _crash_seed() -> int:
    return int(os.environ.get("REPRO_CRASH_SEED", DEFAULT_SEED))


def _config(artifact_format="jsonl"):
    return CampaignConfig(
        seed=13,
        num_interstate_drives=2,
        num_city_drives=0,
        max_drive_seconds=120.0,
        test_duration_s=30.0,
        window_period_s=50.0,
        artifact_format=artifact_format,
    )


def _run_campaign(artifact_format, checkpoint, dataset_path, manifest_path):
    campaign = Campaign(_config(artifact_format), recorder=ObsRecorder())
    dataset = campaign.run(
        checkpoint_path=checkpoint, manifest_path=manifest_path
    )
    dataset.save_json(dataset_path)


def _child(artifact_format, checkpoint, dataset_path, manifest_path, kill_at):
    """Run the campaign; SIGKILL self at global boundary index kill_at."""
    state = {"crossed": 0}

    def hook(label):
        if state["crossed"] == kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        state["crossed"] += 1

    if kill_at is not None:
        commit._CRASH_HOOK = hook
    _run_campaign(artifact_format, checkpoint, dataset_path, manifest_path)


def _spawn(artifact_format, checkpoint, dataset_path, manifest_path, kill_at):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(
        target=_child,
        args=(artifact_format, checkpoint, dataset_path, manifest_path, kill_at),
    )
    proc.start()
    proc.join(timeout=300)
    assert proc.exitcode is not None, "crash-harness child hung"
    return proc.exitcode


def _boundary_sequence(artifact_format, tmp_path):
    """Ordered boundary labels of one clean run (plus its artifacts)."""
    sequence = []
    commit._CRASH_HOOK = sequence.append
    try:
        _run_campaign(
            artifact_format,
            tmp_path / "clean-ck",
            tmp_path / "clean-dataset.json",
            tmp_path / "clean-manifest.json",
        )
    finally:
        commit._CRASH_HOOK = None
    return sequence


def _kill_plan(sequence, rng):
    """Seeded kill points: every distinct label covered, >= MIN_KILLS."""
    by_label = {}
    for index, label in enumerate(sequence):
        by_label.setdefault(label, []).append(index)
    plan = {rng.choice(indices) for _, indices in sorted(by_label.items())}
    while len(plan) < MIN_KILLS:
        plan.add(rng.randrange(len(sequence)))
    return sorted(plan)


def _read(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _store_bytes(root) -> dict[str, bytes]:
    return {
        name: _read(os.path.join(root, name))
        for name in sorted(os.listdir(root))
    }


def _deterministic_blob(manifest_path) -> bytes:
    return RunManifest.load_json(manifest_path).deterministic_blob()


def test_sharded_store_survives_sigkill_at_every_boundary(tmp_path):
    seed = _crash_seed()
    print(f"\ncrash-injection seed: {seed} (set REPRO_CRASH_SEED to replay)")
    rng = random.Random(seed)

    sequence = _boundary_sequence("jsonl", tmp_path)
    labels = sorted(set(sequence))
    # The clean run crosses all four protocol steps for every artifact.
    for artifact in ("shard", "manifest", "dataset", "run_manifest"):
        assert any(label.startswith(artifact + ".") for label in labels), labels
    # Every WAL-protocol commit point must appear in the enumeration —
    # a missing label here means a crash point nobody kills at
    # (detflow's DF201 boundary-coverage check keys off these names).
    for wal_label in (
        "shard.wal.append",
        "shard.wal.fsync",
        "shard.rename",
        "shard.dirsync",
    ):
        assert wal_label in labels, f"boundary {wal_label} never crossed"

    clean_dataset = _read(tmp_path / "clean-dataset.json")
    clean_store = _store_bytes(tmp_path / "clean-ck")
    clean_blob = _deterministic_blob(tmp_path / "clean-manifest.json")

    plan = _kill_plan(sequence, rng)
    assert len(plan) >= MIN_KILLS
    survived_labels = set()
    for kill_at in plan:
        scenario = tmp_path / f"kill-{kill_at:04d}"
        scenario.mkdir()
        checkpoint = scenario / "ck"
        dataset_path = scenario / "dataset.json"
        manifest_path = scenario / "manifest.json"

        exitcode = _spawn("jsonl", checkpoint, dataset_path, manifest_path, kill_at)
        assert exitcode == -signal.SIGKILL, (
            f"kill at boundary {kill_at} ({sequence[kill_at]}): "
            f"child exited {exitcode} instead of being SIGKILLed"
        )
        exitcode = _spawn("jsonl", checkpoint, dataset_path, manifest_path, None)
        assert exitcode == 0, (
            f"resume after kill at {sequence[kill_at]} (boundary {kill_at}) "
            f"failed with exit code {exitcode}"
        )

        label = sequence[kill_at]
        context = f"after SIGKILL at {label} (boundary {kill_at})"
        assert _read(dataset_path) == clean_dataset, f"dataset differs {context}"
        assert _store_bytes(checkpoint) == clean_store, f"store differs {context}"
        assert _deterministic_blob(manifest_path) == clean_blob, (
            f"deterministic manifest differs {context}"
        )
        survived_labels.add(label)

    print(
        f"survived {len(plan)} seeded SIGKILLs across "
        f"{len(survived_labels)} distinct boundaries"
    )
    assert survived_labels == set(labels)


def test_monolithic_checkpoint_survives_sigkill_at_every_boundary(tmp_path):
    seed = _crash_seed()
    print(f"\ncrash-injection seed: {seed} (set REPRO_CRASH_SEED to replay)")
    rng = random.Random(seed)

    sequence = _boundary_sequence("json", tmp_path)
    checkpoint_boundaries = sorted(
        {label for label in sequence if label.startswith("checkpoint.")}
    )
    assert checkpoint_boundaries == [
        "checkpoint.dirsync",
        "checkpoint.rename",
        "checkpoint.tmp.fsync",
        "checkpoint.tmp.write",
    ]

    clean_dataset = _read(tmp_path / "clean-dataset.json")
    clean_checkpoint = _read(tmp_path / "clean-ck")
    clean_blob = _deterministic_blob(tmp_path / "clean-manifest.json")

    by_label = {}
    for index, label in enumerate(sequence):
        if label.startswith("checkpoint."):
            by_label.setdefault(label, []).append(index)
    plan = sorted(rng.choice(indices) for indices in by_label.values())

    for kill_at in plan:
        scenario = tmp_path / f"kill-{kill_at:04d}"
        scenario.mkdir()
        checkpoint = scenario / "ck"
        dataset_path = scenario / "dataset.json"
        manifest_path = scenario / "manifest.json"

        exitcode = _spawn("json", checkpoint, dataset_path, manifest_path, kill_at)
        assert exitcode == -signal.SIGKILL
        exitcode = _spawn("json", checkpoint, dataset_path, manifest_path, None)
        assert exitcode == 0

        context = f"after SIGKILL at {sequence[kill_at]} (boundary {kill_at})"
        assert _read(dataset_path) == clean_dataset, f"dataset differs {context}"
        assert _read(checkpoint) == clean_checkpoint, (
            f"checkpoint differs {context}"
        )
        assert _deterministic_blob(manifest_path) == clean_blob, (
            f"deterministic manifest differs {context}"
        )
