"""Validation paths of the iPerf harness + MpShell single-path runner."""

import pytest

from repro.conditions import LinkConditions
from repro.tools.iperf import (
    run_mptcp_test,
    run_single_path_over_mpshell,
    run_tcp_test,
    run_udp_test,
)


def flat(rate=30.0, seconds=10):
    return [
        LinkConditions(float(t), rate, rate / 10.0, 40.0, 0.0)
        for t in range(seconds)
    ]


def test_mptcp_requires_traces():
    with pytest.raises(ValueError):
        run_mptcp_test({})


def test_udp_duration_validation():
    with pytest.raises(ValueError):
        run_udp_test(flat(), duration_s=-1.0)


def test_tcp_uplink_direction_measures_uplink():
    result = run_tcp_test(flat(rate=40.0, seconds=20), duration_s=20.0, downlink=False)
    # Uplink is 4 Mbps; TCP should approach it, clearly below downlink.
    assert 2.0 < result.throughput_mbps < 5.0


def test_single_path_over_mpshell_result_shape():
    result = run_single_path_over_mpshell(
        "x", flat(rate=20.0, seconds=10), duration_s=10.0
    )
    assert result.protocol == "tcp"
    assert len(result.series_mbps) == 10
    assert result.throughput_mbps > 10.0


def test_mptcp_two_flat_paths_aggregate():
    traces = {"a": flat(rate=30.0, seconds=10), "b": flat(rate=20.0, seconds=10)}
    result = run_mptcp_test(traces, duration_s=10.0, buffer_segments=8192)
    assert result.throughput_mbps > 32.0  # more than either alone
    assert len(result.series_mbps) == 10
