# detlint-module: repro.core.fake_listing
# Fixture for DET008: unsorted directory listings feeding ordered
# output, and the sorted() / non-ordered uses that must stay clean.
import glob
import os


def emit_unsorted(root, out):
    for name in os.listdir(root):  # DET008 (line 9)
        out.append(name)


def emit_glob(pattern, handle):
    for path in glob.glob(pattern):  # DET008 (line 14)
        handle.write(path + "\n")


def emit_iterdir(root):
    for entry in root.iterdir():  # DET008 (line 19)
        yield entry


def comprehension_order(root):
    return [name for name in os.listdir(root)]  # DET008 (line 24)


def listing_as_list(root):
    return list(os.listdir(root))  # DET008 (line 28)


def emit_sorted(root, out):
    for name in sorted(os.listdir(root)):  # clean: sorted
        out.append(name)


def emptiness_check(root):
    if not os.listdir(root):  # clean: order never observed
        return True
    return False


def count_entries(root):
    total = 0
    for _name in os.listdir(root):  # clean: nothing ordered emitted
        total += 1
    return total
