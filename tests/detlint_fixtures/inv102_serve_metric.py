# detlint-module: repro.serve.fixture
"""INV102: the service registers a series the deterministic manifest
would keep — ``campaign.sneaky_total`` matches no exclusion constant."""


def register(obs):
    obs.counter("serve.admissions")
    obs.counter("campaign.sneaky_total")
