# detlint-module: repro.core.fixture_det003
"""Fixture: set iteration feeding ordered output (DET003)."""


def networks() -> list[str]:
    return list({"RM", "MOB", "ATT"})  # line 6: ordered output from a set
