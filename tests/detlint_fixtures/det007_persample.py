# detlint-module: repro.core.summary
"""Fixture: per-sample loops over a LinkConditions trace (DET007)."""


def mean_goodput(samples, model):
    total = 0.0
    for sample in samples:
        total += sample.capacity_mbps(True)
    series = [model.step(sample) for sample in samples]
    return total, series
