# detlint-module: repro.core.fixture_det004
"""Fixture: ambient entropy near artifact code (DET004)."""


def fingerprint(payload: str) -> int:
    return hash(payload)  # line 6: process-salted hash
