# detlint-module: repro.obs.fixture_inv101
"""Fixture: metric series name off the subsystem.metric pattern (INV101)."""


def register(obs) -> None:
    obs.counter("BadSeriesName")  # line 6: not lowercase dotted
