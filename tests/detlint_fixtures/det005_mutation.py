# detlint-module: repro.experiments.fixture_det005
"""Fixture: post-construction fingerprint-field mutation (DET005)."""


def widen(config) -> None:
    config.seed = 99  # line 6: fingerprint field mutated in place
