# detlint-module: repro.core.fixture_det002
"""Fixture: wall-clock read inside a simulation package (DET002)."""
import time


def stamp() -> float:
    return time.time()  # line 7: host clock in simulation code
