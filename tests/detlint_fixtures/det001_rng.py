# detlint-module: repro.leo.fixture_det001
"""Fixture: module-level RNG outside repro.rng (DET001 fires twice)."""
import random  # line 3: stdlib random import

import numpy as np


def jitter() -> float:
    np.random.seed(7)  # line 9: numpy global RNG
    return random.random()
