# detlint-module: repro.core.fixture_suppressed
"""Fixture: a justified violation silenced by an inline suppression."""
import time


def stamp() -> float:
    # Hypothetical justified exception, silenced with a suppression.
    return time.time()  # detlint: ignore[DET002] fixture-only justification
