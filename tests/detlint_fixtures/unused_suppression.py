# detlint-module: repro.core.fixture_unused
"""Fixture: a suppression with nothing to suppress (SUP001)."""


def clean() -> int:
    return 1  # detlint: ignore[DET001] stale ignore, nothing fires here
