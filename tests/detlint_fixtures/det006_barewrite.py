# detlint-module: repro.experiments.fixture_det006
"""Fixture: bare open()+json.dump JSON writes (DET006)."""
import json


def save(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)  # line 8: torn-write window


def save_direct(path, payload):
    json.dump(payload, open(path, "w"))  # line 12: same, inline
