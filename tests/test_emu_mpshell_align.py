"""MpShell trace replay and timestamp alignment."""

import numpy as np
import pytest

from repro.conditions import LinkConditions
from repro.emu.align import align_conditions
from repro.emu.mpshell import MpShell, TraceLink
from repro.emu.traces import throughput_to_opportunities_ms
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.transport import open_tcp_connection


def flat_conditions(rate=50.0, seconds=10, rtt=40.0, loss=0.0):
    return [
        LinkConditions(float(t), rate, rate / 10.0, rtt, loss)
        for t in range(seconds)
    ]


def test_tracelink_delivers_at_trace_rate():
    sim = Simulator()
    opps = throughput_to_opportunities_ms([12.0] * 5)
    link = TraceLink(
        sim, opps, one_way_delay_ms=10.0, buffer_bytes=10_000_000,
        rng=np.random.default_rng(0),
    )
    received = []
    link.connect(lambda p: received.append(sim.now))
    for i in range(5000):
        link.send(Packet(flow_id=0, size_bytes=1500, seq=i))
    sim.run(until_s=3.0)
    # 12 Mbps = 1000 pkts/s.
    assert len(received) == pytest.approx(3000, rel=0.02)


def test_tracelink_wraps_trace():
    sim = Simulator()
    opps = throughput_to_opportunities_ms([12.0])  # 1 s trace
    link = TraceLink(
        sim, opps, 0.0, 10_000_000, np.random.default_rng(0)
    )
    received = []
    link.connect(lambda p: received.append(sim.now))
    for i in range(2500):
        link.send(Packet(flow_id=0, size_bytes=1500, seq=i))
    sim.run(until_s=2.5)
    assert len(received) == pytest.approx(2500, rel=0.05)


def test_tracelink_respects_buffer():
    sim = Simulator()
    opps = throughput_to_opportunities_ms([1.2] * 2)  # slow link
    link = TraceLink(sim, opps, 0.0, 15_000, np.random.default_rng(0))
    link.connect(lambda p: None)
    for i in range(100):
        link.send(Packet(flow_id=0, size_bytes=1500, seq=i))
    assert link.queue_drops == 90


def test_tracelink_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        TraceLink(sim, [], 0.0, 1000, np.random.default_rng(0))
    with pytest.raises(ValueError):
        TraceLink(sim, [0], 0.0, 1000, np.random.default_rng(0))


def test_mpshell_interface_runs_tcp():
    shell = MpShell(seed=1)
    path = shell.add_interface("VZ", flat_conditions(rate=40.0, seconds=8))
    sender, receiver = open_tcp_connection(shell.sim, path)
    sender.start()
    shell.run(10.0)
    mbps = receiver.bytes_received * 8 / 1e6 / 10.0
    assert mbps > 30.0


def test_mpshell_duplicate_interface_rejected():
    shell = MpShell()
    shell.add_interface("a", flat_conditions())
    with pytest.raises(ValueError):
        shell.add_interface("a", flat_conditions())


def test_mpshell_interface_stats():
    shell = MpShell(seed=2)
    path = shell.add_interface("x", flat_conditions(rate=20.0))
    sender, receiver = open_tcp_connection(shell.sim, path)
    sender.start()
    shell.run(5.0)
    stats = shell.interface_stats("x")
    assert stats.downlink_bytes == pytest.approx(receiver.bytes_received, rel=0.2)


def test_mpshell_run_validation():
    shell = MpShell()
    with pytest.raises(ValueError):
        shell.run(0.0)


def test_align_rebases_to_zero():
    a = flat_conditions(seconds=10)
    b = [
        LinkConditions(t + 3.0, 20.0, 2.0, 50.0, 0.0) for t in range(10)
    ]
    aligned = align_conditions([a, b])
    assert len(aligned[0]) == len(aligned[1]) == 7
    assert aligned[0][0].time_s == 0.0
    assert aligned[1][0].time_s == 0.0


def test_align_applies_offsets():
    a = flat_conditions(seconds=5)
    b = flat_conditions(seconds=5)
    aligned = align_conditions([a, b], offsets_s=[0.0, 2.0])
    # b shifted +2: overlap is 3 seconds.
    assert len(aligned[0]) == 3


def test_align_fills_gaps_with_outage():
    a = flat_conditions(seconds=5)
    b = flat_conditions(seconds=5)
    del b[2]
    aligned = align_conditions([a, b])
    assert aligned[1][2].is_outage
    assert not aligned[0][2].is_outage


def test_align_rejects_disjoint():
    a = flat_conditions(seconds=3)
    b = [LinkConditions(t + 100.0, 10.0, 1.0, 40.0, 0.0) for t in range(3)]
    with pytest.raises(ValueError):
        align_conditions([a, b])


def test_align_rejects_empty():
    with pytest.raises(ValueError):
        align_conditions([[], flat_conditions()])
