"""Gateways (bent-pipe RTT) and the 15 s reconfiguration handover."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint, geodetic_to_ecef_km
from repro.geo.places import PlaceDatabase
from repro.leo.gateway import GatewayNetwork
from repro.leo.handover import (
    RECONFIGURATION_INTERVAL_S,
    HandoverProcess,
)
from repro.rng import RngStreams


@pytest.fixture(scope="module")
def gateways():
    rng = RngStreams(0)
    return GatewayNetwork.synthetic(PlaceDatabase.synthetic(rng), rng)


def test_synthetic_network_nonempty(gateways):
    assert len(gateways.gateways) >= 5


def test_nearest_gateway(gateways):
    gw = gateways.gateways[0]
    found, dist = gateways.nearest(gw.location)
    assert found is gw
    assert dist == pytest.approx(0.0, abs=1e-6)


def test_bent_pipe_rtt_reasonable(gateways):
    """Space segment + backhaul + scheduling should land in the tens of ms."""
    user = gateways.gateways[0].location
    sat = geodetic_to_ecef_km(user, altitude_km=550.0)
    rtt = gateways.bent_pipe_rtt_ms(user, sat, scheduling_ms=18.0)
    # >= 4 hops of >= 1.835 ms each, plus backhaul and scheduling.
    assert 20.0 <= rtt <= 80.0


def test_bent_pipe_rtt_grows_with_distance(gateways):
    user = gateways.gateways[0].location
    overhead = geodetic_to_ecef_km(user, altitude_km=550.0)
    oblique = geodetic_to_ecef_km(
        GeoPoint(user.lat_deg + 8.0, user.lon_deg), altitude_km=550.0
    )
    assert gateways.bent_pipe_rtt_ms(user, oblique) > gateways.bent_pipe_rtt_ms(
        user, overhead
    )


def test_empty_gateway_list_rejected():
    with pytest.raises(ValueError):
        GatewayNetwork([])


def make_process(seed=0):
    return HandoverProcess(np.random.default_rng(seed))


def test_initial_selection():
    process = make_process()
    state = process.step(0.0, [5, 7, 9])
    assert state.serving_satellite == 5


def test_keeps_satellite_within_slot():
    process = make_process()
    process.step(0.0, [5, 7])
    # Best candidate changes mid-slot, but 5 is still usable: keep it.
    state = process.step(5.0, [7, 5])
    assert state.serving_satellite == 5


def test_reselects_at_slot_boundary():
    process = make_process()
    process.step(0.0, [5, 7])
    state = process.step(RECONFIGURATION_INTERVAL_S + 0.5, [7, 5])
    assert state.serving_satellite == 7


def test_switch_causes_capacity_dip():
    process = make_process()
    process.step(0.0, [5])
    state = process.step(15.5, [7])
    assert state.serving_satellite == 7
    assert state.capacity_factor < 1.0 or state.in_handover


def test_no_candidates_is_outage():
    process = make_process()
    process.step(0.0, [5])
    state = process.step(1.0, [])
    assert state.serving_satellite == -1
    assert state.capacity_factor == 0.0
    assert state.extra_loss == 1.0


def test_forced_reselection_mid_slot():
    process = make_process()
    process.step(0.0, [5])
    state = process.step(3.0, [9])  # 5 vanished (blocked)
    assert state.serving_satellite == 9


def test_steady_state_no_penalty():
    process = make_process()
    process.step(0.0, [5])
    # Well past any switch outage, same slot.
    state = process.step(14.0, [5])
    assert state.capacity_factor == 1.0
    assert state.extra_loss == 0.0


def test_reset_forgets_serving():
    process = make_process()
    process.step(0.0, [5])
    process.reset()
    state = process.step(20.0, [7])
    assert state.serving_satellite == 7


def test_invalid_outage_duration():
    with pytest.raises(ValueError):
        HandoverProcess(np.random.default_rng(0), switch_outage_s=20.0)
