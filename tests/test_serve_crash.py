"""Crash-proof service: seeded SIGKILL at every journal commit boundary.

The harness runs one small two-job service campaign to completion under
a recording crash hook, capturing the ordered sequence of commit
boundaries the service crosses — every ``journal.<event>.append`` /
``journal.<event>.fsync`` of the WAL job journal plus all the
store-layer boundaries of the jobs themselves.  A seeded RNG then picks
kill points covering *every distinct journal boundary label* plus extra
random positions (at least :data:`MIN_KILLS` total).  For each kill
point a forked child re-runs the service with a hook that SIGKILLs the
process at that boundary; a second child restarts the service from
whatever the kill left on disk.

The claims being proven, straight from the issue's acceptance list:

* after every kill + restart the queue fully drains and each job's
  dataset, shard store, and deterministic obs manifest are **byte
  identical** to an uninterrupted service run;
* a poison job (SIGKILLs its host every attempt) is quarantined after
  ``poison_threshold`` crashes and never requeued, while its neighbours
  complete;
* SIGTERM mid-campaign drains gracefully — journal flushed, exit 0 —
  and the restarted service resumes byte-identically;
* submissions past queue capacity are rejected with the typed
  :class:`~repro.serve.AdmissionRejected`.

The seed is printed on every run and can be pinned with
``REPRO_CRASH_SEED`` to replay a failure.
"""

import multiprocessing
import os
import random
import signal

import pytest

from repro.obs import ObsRecorder
from repro.obs.manifest import RunManifest
from repro.resilience.policy import RetryPolicy
from repro.serve import (
    AdmissionRejected,
    CampaignService,
    JobState,
    ServiceConfig,
    job_id_for_spec,
    replay_journal,
)
from repro.serve import service as service_module
from repro.serve.journal import JOURNAL_NAME
from repro.store import commit

#: Minimum number of seeded SIGKILL points (the journal alone exposes
#: ten distinct boundary labels in even a two-job run).
MIN_KILLS = 20

#: Default seed for the kill-point RNG; override with REPRO_CRASH_SEED.
DEFAULT_SEED = 20260809

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash harness requires fork"
)

#: Two tiny one-drive campaigns: enough to exercise dispatch order,
#: per-job stores, and the full journal lifecycle while keeping each
#: kill scenario fast.
SPECS = [
    {
        "seed": 13,
        "num_interstate_drives": 1,
        "num_city_drives": 0,
        "max_drive_seconds": 120.0,
        "test_duration_s": 30.0,
        "window_period_s": 50.0,
    },
    {
        "seed": 14,
        "num_interstate_drives": 1,
        "num_city_drives": 0,
        "max_drive_seconds": 120.0,
        "test_duration_s": 30.0,
        "window_period_s": 50.0,
    },
]

#: A two-drive campaign for the SIGTERM drain test: the signal lands
#: during drive 1's shard commit, so there is a real drive left to
#: resume after the checkpoint.
DRAIN_SPEC = {
    "seed": 21,
    "num_interstate_drives": 2,
    "num_city_drives": 0,
    "max_drive_seconds": 120.0,
    "test_duration_s": 30.0,
    "window_period_s": 50.0,
}


def _crash_seed() -> int:
    return int(os.environ.get("REPRO_CRASH_SEED", DEFAULT_SEED))


def _serve(root, specs, **overrides):
    """One service run: submit the specs, drain the queue, close."""
    defaults = dict(
        root=str(root),
        isolation="inline",
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
        poll_interval_s=0.01,
    )
    defaults.update(overrides)
    config = ServiceConfig(**defaults)
    with CampaignService(config, recorder=ObsRecorder()) as service:
        for spec in specs:
            service.submit(spec)  # dedups on restart
        service.run_until_drained()


def _kill_child(root, specs, kill_at, overrides):
    """Run the service; SIGKILL self at global boundary index kill_at."""
    state = {"crossed": 0}

    def hook(label):
        if state["crossed"] == kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        state["crossed"] += 1

    if kill_at is not None:
        commit._CRASH_HOOK = hook
    _serve(root, specs, **overrides)


def _spawn(root, specs, kill_at=None, **overrides):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_kill_child, args=(root, specs, kill_at, overrides))
    proc.start()
    proc.join(timeout=300)
    assert proc.exitcode is not None, "crash-harness child hung"
    return proc.exitcode


def _boundary_sequence(root, specs):
    """Ordered boundary labels of one clean service run (+ artifacts)."""
    sequence = []
    commit._CRASH_HOOK = sequence.append
    try:
        _serve(root, specs)
    finally:
        commit._CRASH_HOOK = None
    return sequence


def _kill_plan(sequence, rng):
    """Seeded kill points: every distinct ``journal.*`` boundary label
    covered, padded with random positions to at least MIN_KILLS."""
    by_label = {}
    for index, label in enumerate(sequence):
        if label.startswith("journal."):
            by_label.setdefault(label, []).append(index)
    plan = {rng.choice(indices) for _, indices in sorted(by_label.items())}
    while len(plan) < MIN_KILLS:
        plan.add(rng.randrange(len(sequence)))
    return sorted(plan)


def _read(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _store_bytes(root) -> dict[str, bytes]:
    return {
        name: _read(os.path.join(root, name))
        for name in sorted(os.listdir(root))
    }


def _job_artifacts(root, job_id):
    """(dataset bytes, store bytes, deterministic manifest blob)."""
    job_dir = os.path.join(str(root), "jobs", job_id)
    return (
        _read(os.path.join(job_dir, "dataset.json")),
        _store_bytes(os.path.join(job_dir, "store")),
        RunManifest.load_json(
            os.path.join(job_dir, "manifest.json")
        ).deterministic_blob(),
    )


def test_service_survives_sigkill_at_every_journal_boundary(tmp_path):
    seed = _crash_seed()
    print(f"\ncrash-injection seed: {seed} (set REPRO_CRASH_SEED to replay)")
    rng = random.Random(seed)

    clean_root = tmp_path / "clean"
    sequence = _boundary_sequence(clean_root, SPECS)
    journal_labels = sorted(
        {label for label in sequence if label.startswith("journal.")}
    )
    # The clean run commits every lifecycle event through both WAL steps.
    for event in ("header", "submitted", "admitted", "running", "done"):
        assert f"journal.{event}.append" in journal_labels, journal_labels
        assert f"journal.{event}.fsync" in journal_labels, journal_labels

    job_ids = [job_id_for_spec(spec) for spec in SPECS]
    clean = {job_id: _job_artifacts(clean_root, job_id) for job_id in job_ids}

    plan = _kill_plan(sequence, rng)
    assert len(plan) >= MIN_KILLS
    survived_labels = set()
    for kill_at in plan:
        root = tmp_path / f"kill-{kill_at:04d}"
        label = sequence[kill_at]
        context = f"after SIGKILL at {label} (boundary {kill_at})"

        exitcode = _spawn(root, SPECS, kill_at=kill_at)
        assert exitcode == -signal.SIGKILL, (
            f"kill at boundary {kill_at} ({label}): "
            f"child exited {exitcode} instead of being SIGKILLed"
        )
        exitcode = _spawn(root, SPECS)
        assert exitcode == 0, f"restart failed with exit {exitcode} {context}"

        replay = replay_journal(root / JOURNAL_NAME)
        assert replay.torn_reason is None, (
            f"journal still torn after restart {context}: {replay.torn_reason}"
        )
        for job_id in job_ids:
            assert replay.jobs[job_id].state is JobState.DONE, (
                f"queue not drained {context}: "
                f"{job_id} is {replay.jobs[job_id].state}"
            )
            assert _job_artifacts(root, job_id) == clean[job_id], (
                f"artifacts for {job_id} differ {context}"
            )
        survived_labels.add(label)

    print(
        f"survived {len(plan)} seeded SIGKILLs across "
        f"{len(survived_labels)} distinct boundaries"
    )
    assert set(journal_labels) <= survived_labels


def _poison_child(root, overrides):
    """Service run whose first job SIGKILLs the host on every attempt."""
    poison_id = job_id_for_spec(SPECS[0])

    def hook(job_id, attempt):
        if job_id == poison_id:
            os.kill(os.getpid(), signal.SIGKILL)

    service_module._JOB_HOOK = hook
    _serve(root, SPECS, **overrides)


def _spawn_poison(root, **overrides):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_poison_child, args=(root, overrides))
    proc.start()
    proc.join(timeout=300)
    assert proc.exitcode is not None, "poison child hung"
    return proc.exitcode


def test_poison_job_quarantined_never_requeued(tmp_path):
    root = tmp_path / "serve"
    poison_id = job_id_for_spec(SPECS[0])
    healthy_id = job_id_for_spec(SPECS[1])
    threshold = 2

    # Each supervised run starts the poison job, which kills the whole
    # service; the restart's recovery counts the crash.
    for _ in range(threshold):
        exitcode = _spawn_poison(root, poison_threshold=threshold)
        assert exitcode == -signal.SIGKILL

    # Crash number `threshold` trips quarantine on this restart: the
    # poison job is parked, the healthy job completes, the service
    # exits cleanly even though the hook is still armed.
    exitcode = _spawn_poison(root, poison_threshold=threshold)
    assert exitcode == 0

    replay = replay_journal(root / JOURNAL_NAME)
    poison = replay.jobs[poison_id]
    assert poison.state is JobState.QUARANTINED
    assert poison.crashes == threshold
    assert "poison" in poison.reason
    assert replay.jobs[healthy_id].state is JobState.DONE

    runs_before = sum(
        1
        for body in replay.events
        if body["event"] == "running" and body["job"] == poison_id
    )
    assert runs_before == threshold

    # Another full service run must not touch the quarantined job.
    exitcode = _spawn_poison(root, poison_threshold=threshold)
    assert exitcode == 0
    replay = replay_journal(root / JOURNAL_NAME)
    assert replay.jobs[poison_id].state is JobState.QUARANTINED
    runs_after = sum(
        1
        for body in replay.events
        if body["event"] == "running" and body["job"] == poison_id
    )
    assert runs_after == runs_before, "quarantined job was requeued"


def _drain_child(root):
    """Service run that SIGTERMs itself during drive 1's shard commit."""
    state = {"fired": False}

    def hook(label):
        if label == "shard.dirsync" and not state["fired"]:
            state["fired"] = True
            os.kill(os.getpid(), signal.SIGTERM)

    commit._CRASH_HOOK = hook
    _serve(root, [DRAIN_SPEC])


def test_sigterm_drains_gracefully_and_resumes_byte_identical(tmp_path):
    clean_root = tmp_path / "clean"
    _serve(clean_root, [DRAIN_SPEC])
    job_id = job_id_for_spec(DRAIN_SPEC)
    clean = _job_artifacts(clean_root, job_id)

    root = tmp_path / "serve"
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_drain_child, args=(root,))
    proc.start()
    proc.join(timeout=300)
    # Graceful drain is a *clean* exit: checkpoint journaled, status 0.
    assert proc.exitcode == 0

    replay = replay_journal(root / JOURNAL_NAME)
    record = replay.jobs[job_id]
    assert record.state is JobState.CHECKPOINTED
    assert record.crashes == 0, "graceful drain must not count as a crash"
    assert [b["event"] for b in replay.events if b["job"] == job_id] == [
        "submitted",
        "admitted",
        "running",
        "checkpointed",
    ]
    # Drive 1 checkpointed before the drain; drive 2 never started.
    store = os.path.join(str(root), "jobs", job_id, "store")
    assert any(name.startswith("drive-") for name in os.listdir(store))

    exitcode = _spawn(root, [DRAIN_SPEC])
    assert exitcode == 0
    replay = replay_journal(root / JOURNAL_NAME)
    assert replay.jobs[job_id].state is JobState.DONE
    assert _job_artifacts(root, job_id) == clean


def test_queue_past_capacity_rejects_with_typed_error(tmp_path):
    config = ServiceConfig(
        root=str(tmp_path / "serve"), isolation="inline", max_queue_depth=1
    )
    with CampaignService(config, recorder=ObsRecorder()) as service:
        service.submit(SPECS[0])
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(SPECS[1])
        assert excinfo.value.depth == 1
        assert excinfo.value.max_queue_depth == 1
        assert excinfo.value.job_id == job_id_for_spec(SPECS[1])
