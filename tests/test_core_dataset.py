"""Dataset container: filtering, aggregation, persistence."""

import pytest

from repro.core.dataset import (
    DriveDataset,
    SecondSample,
    TestRecord,
)
from repro.geo.classify import AreaType


def sample(t=0.0, mbps=100.0, rtt=50.0, loss=0.001, area=AreaType.RURAL, speed=80.0):
    return SecondSample(
        time_s=t,
        throughput_mbps=mbps,
        rtt_ms=rtt,
        loss_rate=loss,
        speed_kmh=speed,
        area=area,
        lat_deg=44.0,
        lon_deg=-93.0,
    )


def record(test_id=0, network="MOB", protocol="udp", direction="dl",
           parallel=1, samples=None, retx=0.0):
    return TestRecord(
        test_id=test_id,
        drive_id=0,
        network=network,
        protocol=protocol,
        direction=direction,
        parallel=parallel,
        samples=samples if samples is not None else [sample(float(i), 50.0 + i) for i in range(4)],
        retransmission_rate=retx,
    )


@pytest.fixture
def dataset():
    return DriveDataset(
        [
            record(0, "MOB", "udp", "dl"),
            record(1, "MOB", "tcp", "dl"),
            record(2, "VZ", "udp", "dl"),
            record(3, "VZ", "udp", "ul"),
            record(4, "RM", "tcp", "dl", parallel=8),
            record(
                5,
                "ATT",
                "udp",
                "dl",
                samples=[sample(area=AreaType.URBAN), sample(1.0, area=AreaType.RURAL)],
            ),
        ],
        trace_minutes=100.0,
        distance_km=50.0,
    )


def test_record_validation():
    with pytest.raises(ValueError):
        record(network="SPRINT")
    with pytest.raises(ValueError):
        record(protocol="quic")
    with pytest.raises(ValueError):
        record(direction="sideways")
    with pytest.raises(ValueError):
        record(parallel=0)


def test_record_stats():
    rec = record(samples=[sample(0.0, 10.0), sample(1.0, 30.0)])
    assert rec.mean_throughput_mbps == 20.0
    assert rec.median_throughput_mbps == 20.0
    assert rec.duration_s == 2.0
    assert rec.is_starlink


def test_filter_by_network(dataset):
    assert dataset.filter(network="MOB").num_tests == 2
    assert dataset.filter(network="VZ", direction="ul").num_tests == 1


def test_filter_by_protocol_and_parallel(dataset):
    assert dataset.filter(protocol="tcp").num_tests == 2
    assert dataset.filter(protocol="tcp", parallel=8).num_tests == 1


def test_filter_by_area_trims_samples(dataset):
    urban = dataset.filter(network="ATT", area=AreaType.URBAN)
    assert urban.num_tests == 1
    assert len(urban.records[0].samples) == 1
    # No MOB samples are urban in the fixture.
    assert dataset.filter(network="MOB", area=AreaType.URBAN).num_tests == 0


def test_filter_preserves_campaign_totals(dataset):
    sub = dataset.filter(network="MOB")
    assert sub.trace_minutes == dataset.trace_minutes
    assert sub.distance_km == dataset.distance_km


def test_throughput_samples(dataset):
    values = dataset.filter(network="MOB", protocol="udp").throughput_samples()
    assert values == [50.0, 51.0, 52.0, 53.0]


def test_test_means(dataset):
    means = dataset.filter(network="MOB", protocol="udp").test_means()
    assert means == [51.5]


def test_rtt_samples_skip_outages():
    rec = record(
        samples=[sample(rtt=60.0), sample(1.0, 0.0, rtt=1000.0, loss=1.0)]
    )
    ds = DriveDataset([rec])
    assert ds.rtt_samples() == [60.0]


def test_csv_export(dataset, tmp_path):
    path = tmp_path / "dataset.csv"
    count = dataset.export_csv(path)
    lines = path.read_text().splitlines()
    assert count == sum(len(r.samples) for r in dataset.records)
    assert len(lines) == count + 1  # header
    assert lines[0].startswith("test_id,drive_id,network")
    assert any(",MOB," in line for line in lines[1:])


def test_json_round_trip(dataset, tmp_path):
    path = tmp_path / "dataset.json"
    dataset.save_json(path)
    loaded = DriveDataset.load_json(path)
    assert loaded.num_tests == dataset.num_tests
    assert loaded.distance_km == dataset.distance_km
    assert loaded.records[0].network == dataset.records[0].network
    assert (
        loaded.records[0].samples[0].throughput_mbps
        == dataset.records[0].samples[0].throughput_mbps
    )
    assert loaded.records[5].samples[0].area is AreaType.URBAN


def test_save_json_byte_identical_across_dict_insertion_order(tmp_path):
    """Equal datasets serialize to equal bytes regardless of how the
    caller's ``area_proportions`` dict was built.

    Regression test: ``save_json`` used to iterate the dict in
    insertion order, so two semantically identical datasets (one built
    urban-first, one rural-first) produced different files — breaking
    the byte-identity guarantee every resume/parallel equivalence test
    leans on.
    """
    records = [record()]
    forward = DriveDataset(
        records,
        trace_minutes=10.0,
        distance_km=12.0,
        area_proportions={
            AreaType.URBAN: 0.2,
            AreaType.SUBURBAN: 0.3,
            AreaType.RURAL: 0.5,
        },
    )
    reverse = DriveDataset(
        records,
        trace_minutes=10.0,
        distance_km=12.0,
        area_proportions={
            AreaType.RURAL: 0.5,
            AreaType.SUBURBAN: 0.3,
            AreaType.URBAN: 0.2,
        },
    )
    path_a = tmp_path / "forward.json"
    path_b = tmp_path / "reverse.json"
    forward.save_json(path_a)
    reverse.save_json(path_b)
    assert path_a.read_bytes() == path_b.read_bytes()
    # And the digest still verifies after the ordering change.
    assert DriveDataset.load_json(path_a).area_proportions == forward.area_proportions
