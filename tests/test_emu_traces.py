"""Mahimahi trace conversion and file I/O."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.conditions import LinkConditions
from repro.emu.traces import (
    conditions_to_opportunities_ms,
    read_trace,
    throughput_to_opportunities_ms,
    trace_mean_mbps,
    write_trace,
)


def test_constant_rate_conversion():
    # 12 Mbps = 1000 x 1500-byte opportunities per second.
    opps = throughput_to_opportunities_ms([12.0] * 2)
    assert len(opps) == 2000
    assert opps[0] == 0
    assert opps[-1] < 2000


def test_rate_preserved_on_average():
    opps = throughput_to_opportunities_ms([50.0] * 10)
    assert trace_mean_mbps(opps) == pytest.approx(50.0, rel=0.02)


def test_fractional_carry():
    # 0.006 Mbps = 0.5 opportunities/s: the carry must yield 1 every 2 s.
    opps = throughput_to_opportunities_ms([0.006] * 10)
    assert len(opps) == 5


def test_zero_rate_second_emits_nothing():
    opps = throughput_to_opportunities_ms([12.0, 0.0, 12.0])
    seconds = {o // 1000 for o in opps}
    assert 1 not in seconds


def test_negative_rate_rejected():
    with pytest.raises(ValueError):
        throughput_to_opportunities_ms([-1.0])


def test_conditions_conversion_uses_direction():
    samples = [
        LinkConditions(float(t), 12.0, 1.2, 50.0, 0.0) for t in range(3)
    ]
    down = conditions_to_opportunities_ms(samples, downlink=True)
    up = conditions_to_opportunities_ms(samples, downlink=False)
    assert len(down) == pytest.approx(10 * len(up), rel=0.05)


def test_trace_file_round_trip(tmp_path):
    opps = throughput_to_opportunities_ms([25.0] * 4)
    path = tmp_path / "trace.txt"
    write_trace(path, opps)
    assert read_trace(path) == opps


def test_write_empty_trace_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_trace(tmp_path / "x.txt", [])


def test_write_unsorted_trace_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_trace(tmp_path / "x.txt", [5, 3])


def test_read_rejects_garbage(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("12\nhello\n")
    with pytest.raises(ValueError):
        read_trace(path)


def test_read_rejects_empty(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("\n\n")
    with pytest.raises(ValueError):
        read_trace(path)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=120.0), min_size=1, max_size=10
    )
)
@settings(deadline=None, max_examples=40)
def test_opportunities_sorted_and_nonnegative(series):
    opps = throughput_to_opportunities_ms(series)
    assert all(ts >= 0 for ts in opps)
    assert opps == sorted(opps)


@given(st.floats(min_value=1.0, max_value=120.0), st.integers(min_value=2, max_value=8))
@settings(deadline=None, max_examples=40)
def test_mean_rate_round_trip(rate, seconds):
    opps = throughput_to_opportunities_ms([rate] * seconds)
    assert trace_mean_mbps(opps) == pytest.approx(rate, rel=0.15)
