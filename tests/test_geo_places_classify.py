"""Place database and the paper's area-type classifier."""

import pytest

from repro.geo.classify import (
    AreaClassifier,
    AreaType,
    ClassifierThresholds,
    obstruction_elevation_mask_deg,
)
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.places import STATE_NAMES, Place, PlaceDatabase
from repro.rng import RngStreams


@pytest.fixture(scope="module")
def places():
    return PlaceDatabase.synthetic(RngStreams(0))


def test_synthetic_database_covers_five_states(places):
    states = {p.state for p in places.places}
    assert states == set(STATE_NAMES)
    assert len(STATE_NAMES) == 5


def test_each_state_has_a_metro(places):
    for state in STATE_NAMES:
        metros = [
            p for p in places.places if p.state == state and p.is_city
        ]
        assert len(metros) >= 2  # metro + secondary city


def test_nearest_distance_at_place_is_zero(places):
    place = places.places[0]
    nearest, dist = places.nearest_distance_km(place.location)
    assert nearest is place
    assert dist == pytest.approx(0.0, abs=1e-6)


def test_nearest_distance_monotone(places):
    metro = places.cities()[0]
    near = destination_point(metro.location, 90.0, 2.0)
    far = destination_point(metro.location, 90.0, 5.0)
    _, d_near = places.nearest_distance_km(near)
    _, d_far = places.nearest_distance_km(far)
    assert d_near <= d_far + 1e-9


def test_empty_database_rejected():
    with pytest.raises(ValueError):
        PlaceDatabase([])


def test_classifier_metro_center_is_urban(places):
    classifier = AreaClassifier(places)
    metro = max(places.places, key=lambda p: p.population)
    assert classifier.classify(metro.location) is AreaType.URBAN


def test_classifier_far_from_everything_is_rural(places):
    classifier = AreaClassifier(places)
    # Far northwest corner of the synthetic region.
    assert classifier.classify(GeoPoint(49.5, -103.0)) is AreaType.RURAL


def test_classifier_town_center_is_suburban_not_urban(places):
    classifier = AreaClassifier(places)
    town = next(p for p in places.places if not p.is_city)
    area = classifier.classify_distance(town, 0.5)
    assert area is AreaType.SUBURBAN


def test_thresholds_scale_with_population():
    thresholds = ClassifierThresholds()
    assert thresholds.scale(800_000) > thresholds.scale(100_000)
    assert thresholds.scale(100_000) == pytest.approx(1.0)


def test_classify_distance_boundaries(places):
    thresholds = ClassifierThresholds(urban_km=6.0, suburban_km=18.0)
    classifier = AreaClassifier(places, thresholds)
    city = Place("X", GeoPoint(45.0, -93.0), "Minnesota", 100_000)
    assert classifier.classify_distance(city, 5.9) is AreaType.URBAN
    assert classifier.classify_distance(city, 6.1) is AreaType.SUBURBAN
    assert classifier.classify_distance(city, 18.1) is AreaType.RURAL


def test_obstruction_fraction_ordering(places):
    classifier = AreaClassifier(places)
    urban = classifier.obstruction_fraction(AreaType.URBAN, 0.5)
    rural = classifier.obstruction_fraction(AreaType.RURAL, 0.5)
    assert urban > rural


def test_obstruction_fraction_validates_rng_value(places):
    classifier = AreaClassifier(places)
    with pytest.raises(ValueError):
        classifier.obstruction_fraction(AreaType.URBAN, 1.5)


def test_obstruction_mask_monotone():
    masks = [obstruction_elevation_mask_deg(f / 10.0) for f in range(11)]
    assert masks == sorted(masks)
    assert masks[0] == 0.0
    assert masks[-1] <= 90.0


def test_obstruction_mask_validates():
    with pytest.raises(ValueError):
        obstruction_elevation_mask_deg(1.5)
