"""Shared experiment fixtures."""

import pytest

from repro.conditions import LinkConditions
from repro.core.dataset import NETWORKS
from repro.experiments.common import (
    campaign_dataset,
    collect_conditions,
    config_for_scale,
    mean_capacity_mbps,
)


def test_config_scales():
    small = config_for_scale("small")
    medium = config_for_scale("medium")
    paper = config_for_scale("paper")
    # Total simulated drive time grows with scale.
    small_total = small.num_interstate_drives * small.max_drive_seconds
    medium_total = (
        medium.num_interstate_drives + medium.num_city_drives
    ) * medium.max_drive_seconds
    assert small_total < medium_total
    assert paper.max_drive_seconds is None  # full routes
    assert paper.num_interstate_drives > medium.num_interstate_drives


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        config_for_scale("galactic")


def test_campaign_dataset_memoized():
    a = campaign_dataset("small", 0)
    b = campaign_dataset("small", 0)
    assert a is b


def test_collect_conditions_aligned():
    traces = collect_conditions(duration_s=30, seed=3)
    assert set(traces) == set(NETWORKS)
    lengths = {len(v) for v in traces.values()}
    assert lengths == {30}
    # Same timestamps across networks (the paper's alignment).
    t_mob = [s.time_s for s in traces["MOB"]]
    t_vz = [s.time_s for s in traces["VZ"]]
    assert t_mob == t_vz


def test_collect_conditions_subset_networks():
    traces = collect_conditions(duration_s=10, seed=3, networks=("MOB", "VZ"))
    assert set(traces) == {"MOB", "VZ"}


def test_collect_conditions_unknown_network():
    with pytest.raises(KeyError):
        collect_conditions(duration_s=10, seed=3, networks=("MOB", "SPRINT"))


def test_collect_conditions_route_too_short():
    with pytest.raises(ValueError):
        collect_conditions(duration_s=100, seed=3, skip_s=10_000_000)


def test_mean_capacity():
    samples = [
        LinkConditions(0.0, 100.0, 10.0, 50.0, 0.0),
        LinkConditions(1.0, 50.0, 5.0, 50.0, 0.0),
    ]
    assert mean_capacity_mbps(samples) == 75.0
    assert mean_capacity_mbps(samples, downlink=False) == 7.5
    assert mean_capacity_mbps([]) == 0.0
