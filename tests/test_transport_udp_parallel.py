"""UDP flows and parallel TCP."""

import numpy as np
import pytest

from repro.net import FixedConditions, Path, Simulator
from repro.net.host import Demux
from repro.net.link import bdp_bytes
from repro.net.packet import Packet
from repro.transport import ParallelTcp, open_udp_flow


def fixed_path(sim, rate=100.0, delay_ms=20.0, loss=0.0, burst=1.0, seed=0):
    fwd = FixedConditions(rate, delay_ms, loss, burst)
    rev = FixedConditions(max(rate / 10.0, 1.0), delay_ms)
    buf = max(2 * bdp_bytes(rate, 2 * delay_ms), 64 * 1500)
    return Path(sim, fwd, rev, buf, np.random.default_rng(seed))


def test_udp_paced_at_target():
    sim = Simulator()
    path = fixed_path(sim, rate=100.0)
    sender, receiver = open_udp_flow(sim, path, target_mbps=30.0)
    sender.start()
    sim.run(until_s=10.0)
    delivered = sender.stats.bytes_received * 8 / 1e6 / 10.0
    assert delivered == pytest.approx(30.0, rel=0.05)
    assert sender.stats.loss_rate < 0.01


def test_udp_overdriving_measures_capacity():
    """iPerf -u at 1.2x capacity delivers ~capacity (the paper's probe)."""
    sim = Simulator()
    path = fixed_path(sim, rate=50.0)
    sender, _ = open_udp_flow(sim, path, target_mbps=60.0)
    sender.start()
    sim.run(until_s=10.0)
    delivered = sender.stats.bytes_received * 8 / 1e6 / 10.0
    assert delivered == pytest.approx(50.0, rel=0.1)
    assert sender.stats.loss_rate == pytest.approx(1.0 / 6.0, abs=0.05)


def test_udp_duration_limit():
    sim = Simulator()
    path = fixed_path(sim)
    sender, _ = open_udp_flow(sim, path, target_mbps=10.0, duration_s=2.0)
    sender.start()
    sim.run(until_s=10.0)
    expected = 10e6 * 2.0 / 8.0
    assert sender.stats.datagrams_sent * 1500 == pytest.approx(expected, rel=0.05)


def test_udp_rejects_bad_rate():
    sim = Simulator()
    path = fixed_path(sim)
    with pytest.raises(ValueError):
        open_udp_flow(sim, path, target_mbps=0.0)


def test_parallel_rejects_zero():
    sim = Simulator()
    with pytest.raises(ValueError):
        ParallelTcp(sim, fixed_path(sim), num_connections=0)


def test_parallelism_gains_on_lossy_link():
    """Figure 7: parallel connections improve lossy-link throughput."""
    results = {}
    for n in (1, 8):
        sim = Simulator()
        path = fixed_path(sim, rate=100.0, delay_ms=30.0, loss=0.01, burst=30.0, seed=2)
        group = ParallelTcp(sim, path, num_connections=n)
        group.start()
        sim.run(until_s=30.0)
        results[n] = group.stats.bytes_received
    assert results[8] > 1.3 * results[1]


def test_parallelism_little_gain_on_clean_link():
    results = {}
    for n in (1, 8):
        sim = Simulator()
        path = fixed_path(sim, rate=50.0, seed=3)
        group = ParallelTcp(sim, path, num_connections=n)
        group.start()
        sim.run(until_s=15.0)
        results[n] = group.stats.bytes_received
    assert results[8] < 1.3 * results[1]


def test_parallel_aggregate_stats():
    sim = Simulator()
    path = fixed_path(sim, loss=0.01, burst=10.0, seed=4)
    group = ParallelTcp(sim, path, num_connections=4)
    group.start()
    sim.run(until_s=10.0)
    stats = group.stats
    assert stats.bytes_received == sum(r.bytes_received for r in group.receivers)
    assert stats.segments_sent == sum(s.stats.segments_sent for s in group.senders)
    assert 0.0 <= stats.retransmission_rate < 0.2


def test_demux_routes_by_flow():
    demux = Demux()
    seen = []
    demux.register(1, lambda p: seen.append((1, p.seq)))
    demux.register(2, lambda p: seen.append((2, p.seq)))
    demux(Packet(flow_id=2, size_bytes=100, seq=7))
    demux(Packet(flow_id=1, size_bytes=100, seq=9))
    assert seen == [(2, 7), (1, 9)]
    assert len(demux) == 2


def test_demux_rejects_duplicates_and_unknown():
    demux = Demux()
    demux.register(1, lambda p: None)
    with pytest.raises(ValueError):
        demux.register(1, lambda p: None)
    with pytest.raises(KeyError):
        demux(Packet(flow_id=3, size_bytes=100))
