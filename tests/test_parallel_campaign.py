"""Parallel drive-sharded campaign execution.

The contract under test: a campaign run with any ``workers`` count
produces **byte-identical** artifacts to a serial run — dataset JSON,
checkpoint JSON, campaign report, and the deterministic view of the run
manifest — while failures stay isolated, obs metrics merge in drive
order, and a run killed mid-flight resumes (at any worker count) without
re-executing checkpointed drives.

The golden equivalence test honours ``REPRO_EQUIV_WORKERS`` (default 4)
so CI can bound runtime by running it at 2 workers.
"""

import json
import os
import pickle

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.faults import FaultInjector, generate_schedule
from repro.obs import (
    MetricsRegistry,
    NULL_RECORDER,
    ObsRecorder,
    merge_snapshots,
)

#: Worker count for the golden equivalence test (CI pins this to 2).
EQUIV_WORKERS = int(os.environ.get("REPRO_EQUIV_WORKERS", "4"))


def _grid_config(seed=7, drives=3, workers=1, faults=False, **overrides):
    base = dict(
        seed=seed,
        num_interstate_drives=drives,
        num_city_drives=0,
        max_drive_seconds=240.0,
        test_duration_s=30.0,
        window_period_s=40.0,
        workers=workers,
    )
    base.update(overrides)
    config = CampaignConfig(**base)
    if faults:
        config.fault_schedule = generate_schedule(
            seed=seed, num_drives=drives, drive_duration_s=240.0, intensity=3.0
        )
    return config


# -- config surface ------------------------------------------------------


def test_workers_validated():
    with pytest.raises(ValueError):
        CampaignConfig(workers=0)
    with pytest.raises(ValueError):
        CampaignConfig(workers=-2)


def test_workers_excluded_from_fingerprint():
    """Serial checkpoints must resume under any worker count."""
    assert (
        _grid_config(workers=1).fingerprint()
        == _grid_config(workers=8).fingerprint()
    )


# -- the keystone: serial-vs-parallel golden equivalence -----------------


def test_parallel_run_byte_identical_to_serial(tmp_path):
    """``CampaignConfig.small``-style drives at workers=1 vs workers=N:
    checkpoint JSON, dataset JSON, report, and deterministic manifest
    agree byte for byte."""
    artifacts = {}
    for label, workers in (("serial", 1), ("parallel", EQUIV_WORKERS)):
        recorder = ObsRecorder()
        campaign = Campaign(
            _grid_config(workers=workers, faults=True), recorder=recorder
        )
        ckpt = tmp_path / f"{label}.ckpt.json"
        dataset = campaign.run(checkpoint_path=ckpt)
        data = tmp_path / f"{label}.dataset.json"
        dataset.save_json(data)
        report = campaign.report.to_dict()
        assert report.pop("checkpoint_path") == os.fspath(ckpt)
        artifacts[label] = {
            "ckpt": ckpt.read_bytes(),
            "dataset": data.read_bytes(),
            "report": report,
            "manifest": campaign.manifest.deterministic_blob(),
            "num_tests": dataset.num_tests,
        }

    serial, parallel = artifacts["serial"], artifacts["parallel"]
    assert serial["num_tests"] > 0
    assert serial["ckpt"] == parallel["ckpt"]
    assert serial["dataset"] == parallel["dataset"]
    assert serial["report"] == parallel["report"]
    assert serial["manifest"] == parallel["manifest"]


def test_parallel_merges_obs_and_fault_accounting():
    """Worker metric snapshots and injector accounting land in the parent
    exactly as a serial run accumulates them (counters are integer-valued,
    so drive-order merge is float-exact)."""
    serial_rec, parallel_rec = ObsRecorder(), ObsRecorder()
    serial = Campaign(_grid_config(faults=True), recorder=serial_rec)
    serial.run()
    parallel = Campaign(
        _grid_config(workers=2, faults=True), recorder=parallel_rec
    )
    parallel.run()

    assert serial.report.fault_seconds == parallel.report.fault_seconds
    assert (
        serial.report.fault_outage_seconds
        == parallel.report.fault_outage_seconds
    )

    def deterministic(registry):
        from repro.obs import WALL_CLOCK_METRICS

        return [
            m
            for m in registry.snapshot()
            if m["name"] not in WALL_CLOCK_METRICS
        ]

    assert deterministic(serial_rec.registry) == deterministic(
        parallel_rec.registry
    )
    # The parallel run still traces per-drive spans (worker-measured).
    assert len(parallel_rec.tracer.by_name("campaign.drive")) == 3


def test_parallel_drive_failure_isolated():
    """One drive raising in a worker becomes a DriveFailure; the other
    drives' data survives, numbered identically to a serial run."""
    reference = Campaign(_grid_config()).run()

    original = Campaign._simulate_drive

    def flaky(self, drive_id, route):
        if drive_id == 1:
            raise RuntimeError("dish fell off in a worker")
        return original(self, drive_id, route)

    Campaign._simulate_drive = flaky
    try:
        campaign = Campaign(_grid_config(workers=2))
        dataset = campaign.run()
    finally:
        Campaign._simulate_drive = original

    report = campaign.report
    assert not report.ok
    assert report.drives_completed == 2
    assert [f.drive_id for f in report.failures] == [1]
    assert report.failures[0].error_type == "RuntimeError"
    assert "dish fell off" in report.failures[0].message
    assert "RuntimeError" in report.failures[0].traceback
    surviving = [r for r in reference.records if r.drive_id != 1]
    assert [r.samples for r in dataset.records] == [
        r.samples for r in surviving
    ]


# -- resume under parallelism --------------------------------------------


def test_kill_mid_parallel_run_resumes_without_rerunning(tmp_path):
    """Kill a parallel run after drive k (via the fault injector), resume
    at a different worker count: checkpointed drives never re-execute and
    the final dataset matches an uninterrupted run byte for byte."""
    ckpt = tmp_path / "ckpt.json"
    ref, res = tmp_path / "ref.json", tmp_path / "res.json"
    Campaign(_grid_config(faults=True)).run().save_json(ref)

    original = FaultInjector.sample

    def killer(self, time_s, position, speed_kmh, area):
        if self.drive_id >= 2:
            raise KeyboardInterrupt
        return original(self, time_s, position, speed_kmh, area)

    # Drive 2 only starts once a first drive completed (2 workers, 3
    # drives), so the checkpoint is non-empty when the kill lands.
    FaultInjector.sample = killer
    try:
        with pytest.raises(KeyboardInterrupt):
            Campaign(_grid_config(workers=2, faults=True)).run(
                checkpoint_path=ckpt
            )
    finally:
        FaultInjector.sample = original

    completed = {int(k) for k in json.loads(ckpt.read_text())["drives"]}
    assert completed and 2 not in completed

    def poison(self, time_s, position, speed_kmh, area):
        if self.drive_id in completed:
            raise RuntimeError("re-ran a checkpointed drive")
        return original(self, time_s, position, speed_kmh, area)

    FaultInjector.sample = poison
    try:
        resumed = Campaign(_grid_config(workers=3, faults=True))
        dataset = resumed.run(checkpoint_path=ckpt)
    finally:
        FaultInjector.sample = original

    assert resumed.report.drives_resumed == len(completed)
    assert resumed.report.drives_failed == 0
    dataset.save_json(res)
    assert ref.read_bytes() == res.read_bytes()


# -- obs merge + pickling units ------------------------------------------


def test_registry_merge_semantics():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c", network="RM").inc(3)
    b.counter("c", network="RM").inc(4)
    a.gauge("g").set(1.0)
    b.gauge("g").set(2.0)
    ha = a.histogram("h", buckets=(1.0, 10.0))
    hb = b.histogram("h", buckets=(1.0, 10.0))
    ha.observe(0.5)
    hb.observe(5.0)
    hb.observe(50.0)

    a.merge(b.snapshot())
    assert a.value("c", network="RM") == 7.0
    assert a.value("g") == 2.0  # last write wins
    merged = a.histogram("h", buckets=(1.0, 10.0))
    assert merged.counts == [1, 1, 1]
    assert merged.count == 3
    assert merged.total == pytest.approx(55.5)


def test_registry_merge_rejects_bucket_mismatch():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
    b.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
    with pytest.raises(ValueError, match="bucket mismatch"):
        a.merge(b.snapshot())


def test_merge_snapshots_function():
    regs = []
    for value in (1, 2, 4):
        reg = MetricsRegistry()
        reg.counter("c").inc(value)
        reg.gauge("g").set(value)
        regs.append(reg.snapshot())
    merged = merge_snapshots(*regs)
    by_name = {(m["name"], m["type"]): m for m in merged}
    assert by_name[("c", "counter")]["value"] == 7.0
    assert by_name[("g", "gauge")]["value"] == 4.0


def test_null_recorder_pickles_to_singleton():
    clone = pickle.loads(pickle.dumps(NULL_RECORDER))
    assert clone is NULL_RECORDER


def test_obs_recorder_pickles_with_state():
    recorder = ObsRecorder()
    recorder.counter("c", k="v").inc(5)
    recorder.histogram("h", buckets=(1.0,)).observe(0.5)
    with recorder.span("s"):
        pass
    clone = pickle.loads(pickle.dumps(recorder))
    assert clone.registry.snapshot() == recorder.registry.snapshot()
    assert [s.to_dict() for s in clone.tracer.spans] == [
        s.to_dict() for s in recorder.tracer.spans
    ]
