"""The fast-path CI bench gate (benchmarks/check_fastpath_gate.py).

The gate is hardware-portable by construction: it never compares wall
times across machines, only (a) the committed artifact's recorded
speedup against its own acceptance bar and (b) the same-run
fast-vs-reference ratio against the committed ratio with a bounded
regression allowance.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_fastpath_gate",
    REPO_ROOT / "benchmarks" / "check_fastpath_gate.py",
)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _payload(vs_baseline=13.0, vs_reference=6.0, minimum=10.0) -> dict:
    return {
        "min_speedup_vs_baseline": minimum,
        "speedup_vs_baseline": vs_baseline,
        "speedup_vs_reference": vs_reference,
    }


def test_gate_passes_on_identical_measurement():
    assert gate.evaluate(_payload(), _payload()) == []


def test_gate_allows_bounded_regression():
    fresh = _payload(vs_reference=6.0 * 0.81)
    assert gate.evaluate(fresh, _payload()) == []


def test_gate_fails_on_large_regression():
    fresh = _payload(vs_reference=6.0 * 0.79)
    failures = gate.evaluate(fresh, _payload())
    assert len(failures) == 1
    assert "regressed" in failures[0]


def test_gate_fails_when_committed_baseline_below_acceptance():
    committed = _payload(vs_baseline=9.5)
    failures = gate.evaluate(_payload(), committed)
    assert len(failures) == 1
    assert "below the required" in failures[0]


def test_gate_max_regression_knob():
    fresh = _payload(vs_reference=6.0 * 0.55)
    assert gate.evaluate(fresh, _payload(), max_regression=0.5) == []
    assert gate.evaluate(fresh, _payload(), max_regression=0.4) != []


def test_gate_cli_round_trip(tmp_path, capsys):
    fresh = tmp_path / "fresh.json"
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps(_payload()))

    fresh.write_text(json.dumps(_payload(vs_reference=5.9)))
    assert (
        gate.main([str(fresh), "--baseline", str(committed)]) == 0
    )
    assert "bench-gate: ok" in capsys.readouterr().out

    fresh.write_text(json.dumps(_payload(vs_reference=1.0)))
    assert (
        gate.main([str(fresh), "--baseline", str(committed)]) == 1
    )
    assert "FAIL" in capsys.readouterr().out


def test_committed_artifact_passes_its_own_gate():
    """The checked-in BENCH_fastpath.json must satisfy the acceptance
    bar it records — the gate run in CI starts from this artifact."""
    with open(REPO_ROOT / "BENCH_fastpath.json") as handle:
        committed = json.load(handle)
    assert gate.evaluate(committed, committed) == []
    assert committed["speedup_vs_baseline"] >= committed[
        "min_speedup_vs_baseline"
    ]
