"""ASCII figure rendering."""

import pytest

from repro.report import bar_chart, cdf_plot, stacked_shares, timeline


def test_bar_chart_basic():
    out = bar_chart(["ATT", "MOB"], [50.0, 150.0], width=20, unit=" Mbps")
    lines = out.splitlines()
    assert len(lines) == 2
    assert "150.0 Mbps" in lines[1]
    # MOB's bar is the longest.
    assert lines[1].count("█") > lines[0].count("█")


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    assert bar_chart([], []) == "(no data)"


def test_stacked_shares_render():
    out = stacked_shares(
        ["MOB", "ATT"],
        [[0.3, 0.1, 0.1, 0.5], [0.5, 0.2, 0.2, 0.1]],
        legend=["<20", "20-50", "50-100", ">100"],
        width=40,
    )
    assert "MOB" in out and "ATT" in out
    assert "<20" in out


def test_stacked_shares_validation():
    with pytest.raises(ValueError):
        stacked_shares(["x"], [[0.2, 0.2]], legend=["a", "b"])


def test_cdf_plot_monotone_markers():
    out = cdf_plot({"A": [10, 20, 30], "B": [100, 200, 300]}, width=30, height=6)
    assert "A" in out and "B" in out
    assert "Mbps" in out
    assert len(out.splitlines()) == 6 + 3


def test_cdf_plot_empty():
    assert cdf_plot({}) == "(no data)"
    assert cdf_plot({"A": []}) == "(no data)"


def test_timeline_render():
    out = timeline({"MOB": [10, 50, 100], "MPTCP": [20, 80, 150]}, width=30, height=5)
    assert "MPTCP" in out
    assert "3 s" in out


def test_timeline_empty():
    assert timeline({}) == "(no data)"
