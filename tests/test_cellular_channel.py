"""Cellular channel model behaviour."""

import numpy as np

from repro.cellular.channel import CellularChannel
from repro.cellular.carriers import att, tmobile, verizon
from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint
from repro.rng import RngStreams

POSITION = GeoPoint(44.0, -91.0)


def run_channel(carrier_factory, seconds=600, area=AreaType.SUBURBAN, seed=0, speed=70.0):
    channel = CellularChannel(carrier_factory(), RngStreams(seed))
    return [
        channel.sample(float(t), POSITION, speed, area) for t in range(seconds)
    ]


def test_samples_well_formed():
    for s in run_channel(verizon, 300):
        assert s.downlink_mbps >= 0.0
        assert s.uplink_mbps >= 0.0
        assert 0.0 <= s.loss_rate <= 1.0


def test_urban_beats_rural():
    """Figure 8's cellular trend: throughput falls toward rural areas."""
    urban = run_channel(verizon, area=AreaType.URBAN, seed=1)
    rural = run_channel(verizon, area=AreaType.RURAL, seed=1)
    assert np.mean([s.downlink_mbps for s in urban]) > np.mean(
        [s.downlink_mbps for s in rural]
    )


def test_att_weaker_than_verizon():
    a = run_channel(att, area=AreaType.RURAL, seed=2)
    v = run_channel(verizon, area=AreaType.RURAL, seed=2)
    assert np.mean([s.downlink_mbps for s in a]) < np.mean(
        [s.downlink_mbps for s in v]
    )


def test_rtt_ordering_matches_paper():
    """Figure 4: VZ and TM lowest, ATT highest."""
    rtts = {}
    for name, factory in (("ATT", att), ("TM", tmobile), ("VZ", verizon)):
        samples = [s for s in run_channel(factory, seed=3) if not s.is_outage]
        rtts[name] = np.median([s.rtt_ms for s in samples])
    assert rtts["ATT"] > rtts["TM"]
    assert rtts["ATT"] > rtts["VZ"]


def test_rtt_mostly_in_50_100_band():
    samples = [s for s in run_channel(tmobile, seed=4) if not s.is_outage]
    rtts = np.array([s.rtt_ms for s in samples])
    assert 40.0 <= np.median(rtts) <= 100.0


def test_loss_tiny_compared_to_starlink():
    """Figure 5: cellular loss is far below Starlink's 0.3-1.3 %."""
    samples = [s for s in run_channel(verizon, seed=5) if not s.is_outage]
    assert np.mean([s.loss_rate for s in samples]) < 0.002


def test_coverage_holes_more_common_rurally():
    rural = run_channel(att, 3000, area=AreaType.RURAL, seed=6)
    urban = run_channel(att, 3000, area=AreaType.URBAN, seed=6)
    assert np.mean([s.is_outage for s in rural]) > np.mean(
        [s.is_outage for s in urban]
    )


def test_uplink_below_downlink_on_average():
    samples = [s for s in run_channel(verizon, seed=7) if not s.is_outage]
    assert np.mean([s.uplink_mbps for s in samples]) < np.mean(
        [s.downlink_mbps for s in samples]
    )


def test_reset_clears_hole_state():
    channel = CellularChannel(verizon(), RngStreams(8))
    for t in range(200):
        channel.sample(float(t), POSITION, 50.0, AreaType.RURAL)
    channel.reset()
    assert channel._band is None
    assert channel._hole_until_s == -1.0


def test_deterministic_per_seed():
    a = [s.downlink_mbps for s in run_channel(verizon, 100, seed=9)]
    b = [s.downlink_mbps for s in run_channel(verizon, 100, seed=9)]
    assert a == b
