"""Unit tests for repro.serve: journal, admission, state machine, client.

The crash/SIGTERM proofs live in ``tests/test_serve_crash.py``; this
file covers the service's synchronous behaviour — WAL replay, dedup,
typed rejection, retry budgets, poison quarantine bookkeeping, the
filesystem protocol, and the CLI.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.obs import ObsRecorder
from repro.obs.manifest import EXECUTION_METRIC_PREFIXES, RunManifest
from repro.resilience.policy import RetryPolicy
from repro.resilience.taxonomy import TransientDriveError
from repro.serve import (
    AdmissionRejected,
    CampaignService,
    InvalidSubmission,
    JobJournal,
    JobState,
    ServiceClient,
    ServiceConfig,
    job_id_for_spec,
    replay_journal,
    spec_to_config,
)
from repro.serve import service as service_module
from repro.serve.journal import JOURNAL_NAME

#: A campaign small enough for unit tests (one short interstate drive).
SPEC = {
    "seed": 13,
    "num_interstate_drives": 1,
    "num_city_drives": 0,
    "max_drive_seconds": 120.0,
    "test_duration_s": 30.0,
    "window_period_s": 50.0,
}


def _config(tmp_path, **overrides):
    defaults = dict(
        root=str(tmp_path / "serve"),
        isolation="inline",
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _service(tmp_path, **overrides):
    return CampaignService(_config(tmp_path, **overrides), recorder=ObsRecorder())


# -- journal -------------------------------------------------------------


def test_journal_roundtrip(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    replay = journal.open()
    assert replay.jobs == {}
    journal.append({"event": "submitted", "job": "job-a", "spec": {"seed": 1}})
    journal.append({"event": "admitted", "job": "job-a"})
    journal.append({"event": "running", "job": "job-a", "attempt": 0})
    journal.append({"event": "done", "job": "job-a"})
    journal.close()

    replay = replay_journal(path)
    assert replay.torn_reason is None
    record = replay.jobs["job-a"]
    assert record.state is JobState.DONE
    assert record.attempts == 1
    assert record.spec == {"seed": 1}


def test_journal_truncates_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.open()
    journal.append({"event": "submitted", "job": "job-a", "spec": {}})
    journal.append({"event": "admitted", "job": "job-a"})
    journal.close()
    good_size = os.path.getsize(path)
    with open(path, "ab") as handle:
        handle.write(b'{"chain": "torn half-line with no newl')

    replay = replay_journal(path)
    assert replay.torn_reason is not None
    assert replay.jobs["job-a"].state is JobState.ADMITTED
    # Read-only replay never modifies the file...
    assert os.path.getsize(path) > good_size

    # ...opening for append truncates back to the committed prefix.
    journal = JobJournal(path)
    replay = journal.open()
    assert os.path.getsize(path) == good_size
    journal.append({"event": "running", "job": "job-a", "attempt": 0})
    journal.close()
    replay = replay_journal(path)
    assert replay.torn_reason is None
    assert replay.jobs["job-a"].state is JobState.RUNNING


def test_journal_stops_at_chain_break(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.open()
    journal.append({"event": "submitted", "job": "job-a", "spec": {}})
    journal.append({"event": "admitted", "job": "job-a"})
    journal.append({"event": "running", "job": "job-a", "attempt": 0})
    journal.close()

    lines = open(path, "rb").read().splitlines(keepends=True)
    # Corrupt the 'admitted' line: everything after it is untrusted.
    tampered = lines[2].replace(b'"admitted"', b'"cancelled"')
    with open(path, "wb") as handle:
        handle.write(b"".join(lines[:2] + [tampered] + lines[3:]))

    replay = replay_journal(path)
    assert replay.torn_reason is not None
    assert replay.jobs["job-a"].state is JobState.SUBMITTED


# -- specs and identity --------------------------------------------------


def test_job_id_is_content_addressed():
    assert job_id_for_spec(SPEC) == job_id_for_spec(dict(SPEC))
    assert job_id_for_spec(SPEC) != job_id_for_spec({**SPEC, "seed": 14})
    assert job_id_for_spec(SPEC).startswith("job-")


def test_spec_to_config_forces_sharded_layout(tmp_path):
    config = spec_to_config(SPEC, cache_dir=str(tmp_path))
    assert config.artifact_format == "jsonl"
    assert config.cache_dir == str(tmp_path)
    assert config.seed == 13


def test_spec_to_config_presets_and_execution_knobs():
    config = spec_to_config(
        {"preset": "small", "seed": 3, "drives": 2, "workers": 4,
         "retries": 2, "drive_timeout_s": 900.0}
    )
    assert config.num_interstate_drives == 2
    assert config.workers == 4
    assert config.resilience is not None
    assert config.resilience.retry.max_attempts == 3
    assert config.resilience.drive_timeout_s == 900.0


@pytest.mark.parametrize(
    "spec",
    [
        {"bogus_knob": 1},
        {"preset": "galactic"},
        {"drives": 2},                      # 'drives' needs preset small
        {"preset": "smoke", "drives": 2},   # ...specifically small
        {"seed": -1},                       # CampaignConfig validation
        "not a dict",
    ],
)
def test_invalid_specs_rejected(spec):
    with pytest.raises(InvalidSubmission):
        spec_to_config(spec)


# -- admission, dedup, cancellation --------------------------------------


def test_admission_rejected_beyond_capacity(tmp_path):
    service = _service(tmp_path, max_queue_depth=1)
    service.submit(SPEC)
    with pytest.raises(AdmissionRejected) as excinfo:
        service.submit({**SPEC, "seed": 14})
    assert excinfo.value.max_queue_depth == 1
    assert excinfo.value.depth == 1
    assert service.obs.registry.value("serve.rejections") == 1.0
    # The rejected submission never reached the journal.
    assert len(service.jobs) == 1
    service.close()


def test_inbox_rejection_is_journaled(tmp_path):
    service = _service(tmp_path, max_queue_depth=1)
    service.start()
    service.submit(SPEC)
    client = ServiceClient(service.root)
    overflow = {**SPEC, "seed": 15}
    overflow_id = client.submit(overflow)
    service._scan_inbox()
    record = service.jobs[overflow_id]
    assert record.state is JobState.REJECTED
    assert "queue full" in record.reason
    # The inbox file was consumed either way.
    assert os.listdir(os.path.join(service.root, "inbox")) == []
    service.close()

    # A filesystem client sees the rejection in its status query.
    assert client.status(overflow_id).state is JobState.REJECTED


def test_inbox_invalid_spec_is_journaled(tmp_path):
    service = _service(tmp_path)
    service.start()
    client = ServiceClient(service.root)
    bad_id = client.submit({"no_such_knob": 7})
    service._scan_inbox()
    assert service.jobs[bad_id].state is JobState.REJECTED
    assert "no_such_knob" in service.jobs[bad_id].reason
    service.close()


def test_duplicate_submission_dedups(tmp_path):
    service = _service(tmp_path)
    first = service.submit(SPEC)
    again = service.submit(dict(SPEC))
    assert first == again
    assert len(service.jobs) == 1
    service.run_until_drained()
    assert service.jobs[first].state is JobState.DONE
    attempts = service.jobs[first].attempts

    # Resubmitting a finished job serves the existing artifacts.
    assert service.submit(SPEC) == first
    service.run_until_drained()
    assert service.jobs[first].attempts == attempts
    assert service.obs.registry.value("serve.dedup_hits") == 1.0
    service.close()


def test_cancel_before_running(tmp_path):
    service = _service(tmp_path)
    service.start()
    job_id = service.submit(SPEC)
    ServiceClient(service.root).cancel(job_id)
    service._scan_control()
    assert service.jobs[job_id].state is JobState.CANCELLED
    service.run_until_drained()
    assert service.jobs[job_id].attempts == 0
    service.close()


# -- retries, failures, poison -------------------------------------------


def test_transient_failures_retried_then_succeed(tmp_path, monkeypatch):
    calls = []

    def hook(job_id, attempt):
        calls.append(attempt)
        if len(calls) < 3:
            raise TransientDriveError(f"flaky attempt {attempt}")

    monkeypatch.setattr(service_module, "_JOB_HOOK", hook)
    service = _service(tmp_path)
    job_id = service.submit(SPEC)
    service.run_until_drained()
    record = service.jobs[job_id]
    assert record.state is JobState.DONE
    assert record.attempts == 3
    assert record.error_retries == 2
    assert service.obs.registry.value("serve.retries") == 2.0
    service.close()


def test_transient_failures_exhaust_retry_budget(tmp_path, monkeypatch):
    def hook(job_id, attempt):
        raise TransientDriveError("always flaky")

    monkeypatch.setattr(service_module, "_JOB_HOOK", hook)
    service = _service(tmp_path)
    job_id = service.submit(SPEC)
    service.run_until_drained()
    record = service.jobs[job_id]
    assert record.state is JobState.FAILED
    assert record.attempts == 3  # max_attempts from the RetryPolicy
    assert record.error_type == "TransientDriveError"
    service.close()


def test_permanent_failure_fails_immediately(tmp_path, monkeypatch):
    def hook(job_id, attempt):
        raise ValueError("deterministically broken")

    monkeypatch.setattr(service_module, "_JOB_HOOK", hook)
    service = _service(tmp_path)
    job_id = service.submit(SPEC)
    service.run_until_drained()
    record = service.jobs[job_id]
    assert record.state is JobState.FAILED
    assert record.attempts == 1
    assert record.error_type == "ValueError"
    service.close()


def test_poison_job_quarantined_after_threshold(tmp_path):
    """Replaying a journal full of crashes quarantines — never requeues."""
    root = tmp_path / "serve"
    job_id = job_id_for_spec(SPEC)

    service = _service(tmp_path, poison_threshold=2)
    service.start()
    service.submit(SPEC)
    # Simulate the service dying mid-run: journal 'running' with no
    # terminal event, exactly what a SIGKILL leaves behind.
    service._journal({"event": "running", "job": job_id, "attempt": 0})
    service.close()

    second = _service(tmp_path, poison_threshold=2)
    second.start()
    assert second.jobs[job_id].crashes == 1
    assert second.jobs[job_id].state is JobState.ADMITTED  # requeued once
    second._journal({"event": "running", "job": job_id, "attempt": 1})
    second.close()

    third = _service(tmp_path, poison_threshold=2)
    third.start()
    record = third.jobs[job_id]
    assert record.state is JobState.QUARANTINED
    assert record.crashes == 2
    assert "poison" in record.reason
    assert third.obs.registry.value("serve.quarantines") == 1.0
    # Quarantine is terminal: draining the queue never runs the job.
    third.run_until_drained()
    assert third.jobs[job_id].attempts == 2
    assert third.jobs[job_id].state is JobState.QUARANTINED
    third.close()

    replay = replay_journal(root / JOURNAL_NAME)
    events = [body["event"] for body in replay.events if body["job"] == job_id]
    assert events.count("quarantined") == 1


def test_checkpointed_job_resumes_on_restart(tmp_path):
    job_id = job_id_for_spec(SPEC)
    service = _service(tmp_path)
    service.start()
    service.submit(SPEC)
    service._journal({"event": "running", "job": job_id, "attempt": 0})
    service._journal({"event": "checkpointed", "job": job_id})
    service.close()

    second = _service(tmp_path)
    second.start()
    # A graceful checkpoint is not a crash: no poison accounting.
    assert second.jobs[job_id].crashes == 0
    assert second.jobs[job_id].state is JobState.ADMITTED
    assert second.obs.registry.value("serve.resumes") == 1.0
    second.run_until_drained()
    assert second.jobs[job_id].state is JobState.DONE
    second.close()


# -- metrics -------------------------------------------------------------


def test_serve_metrics_excluded_from_deterministic_manifest():
    assert "serve." in EXECUTION_METRIC_PREFIXES
    obs = ObsRecorder()
    obs.counter("serve.admissions").inc()
    obs.counter("campaign.tests_total").inc()
    manifest = RunManifest.from_recorder(obs, "fp")
    names = {entry["name"] for entry in manifest.deterministic_dict()["metrics"]}
    assert "campaign.tests_total" in names
    assert not any(name.startswith("serve.") for name in names)


# -- client + CLI --------------------------------------------------------


def test_filesystem_protocol_end_to_end(tmp_path):
    service = _service(tmp_path)
    service.start()
    client = ServiceClient(service.root)
    job_id = client.submit(SPEC)
    service.run_until_drained()
    service.close()

    record = client.status(job_id)
    assert record.state is JobState.DONE
    assert client.is_done(job_id)
    paths = client.result_paths(job_id)
    assert os.path.exists(paths.dataset)
    assert os.path.exists(paths.manifest)
    assert os.path.isdir(paths.store)
    manifest = RunManifest.load_json(paths.manifest)
    assert manifest.fingerprint == spec_to_config(SPEC).fingerprint()


def test_drain_request_stops_the_service(tmp_path):
    service = _service(tmp_path)
    service.start()
    ServiceClient(service.root).drain()
    # run_forever honours the drain request instead of serving forever.
    service.run_forever()
    service.close()


def test_cli_submit_run_status(tmp_path):
    root = str(tmp_path / "serve")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )

    def cli(*args):
        return subprocess.run(
            [sys.executable, "-m", "repro.serve", *args],
            capture_output=True, text=True, env=env, timeout=300,
        )

    submitted = cli("submit", "--root", root, "--spec", json.dumps(SPEC))
    assert submitted.returncode == 0, submitted.stderr
    job_id = submitted.stdout.strip()
    assert job_id == job_id_for_spec(SPEC)

    ran = cli("run", "--root", root, "--once", "--inline")
    assert ran.returncode == 0, ran.stderr

    status = cli("status", "--root", root, job_id)
    assert status.returncode == 0, status.stderr
    assert json.loads(status.stdout)["state"] == "done"

    listing = cli("status", "--root", root)
    assert [row["job"] for row in json.loads(listing.stdout)] == [job_id]
