# Fixture: DF301 — live state crossing fork boundaries, four ways,
# plus the sanctioned pattern (plain paths/ids, reconstruct in child).
import multiprocessing
import threading

from repro.store.shard import ShardWriter


def child(writer):
    writer.append({"from": "child"})


class Service:
    def __init__(self, root):
        self.root = root

    def _run(self):
        pass

    def spawn_bound(self):
        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(target=self._run)  # DF301: bound method
        process.start()


def fork_with_writer(root):
    writer = ShardWriter(root + "/out.jsonl", "fp", 0)
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=child, args=(writer,))  # DF301: live writer
    process.start()


def fork_with_handle(root):
    handle = open(root + "/log.txt", "a")
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=child, args=(handle,))  # DF301: open fd
    process.start()


def fork_after_thread(worker, beat):
    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=worker, args=("job-1",))  # DF301: thread+fork
    process.start()


def fork_clean(root, job_id):
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=child, args=(root, job_id))  # clean
    process.start()
