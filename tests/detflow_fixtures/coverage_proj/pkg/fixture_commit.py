# detflow-module: repro.store.fixture_commit
# Fixture: crash-boundary coverage.  Declares three boundaries; the
# sibling tests/ dir references "fixture.step.write" and the f-string
# pattern "fixture.*.sync" — "fixture.step.orphan" is deliberately
# unreferenced and must surface as DF201.


def checkpoint_boundary(label):
    pass


def commit(which):
    checkpoint_boundary("fixture.step.write")
    checkpoint_boundary(f"fixture.{which}.sync")
    checkpoint_boundary("fixture.step.orphan")
