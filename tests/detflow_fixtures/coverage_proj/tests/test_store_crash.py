# Fixture crash "test": references two of the three declared
# boundaries.  Not collected by pytest (no test_ functions at module
# scope that assert anything real) — it exists so the coverage checker
# has reference strings to find.

REFERENCED = [
    "fixture.step.write",
]


def _kill_at(step):
    return f"fixture.{step}.sync"
