# Fixture crash "test" (fault-injection side): present so the coverage
# checker does not fail closed on a missing file; adds no references.
