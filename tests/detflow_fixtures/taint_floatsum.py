# Fixture: DF106 — float reductions over unordered collections
# reaching canonical JSON; sorting the operands first is the fix
# (float addition is not associative, so order changes the bytes).
from repro.store.shard import canonical_json


def total_unordered(samples):
    pending = set(samples)
    total = sum(pending)
    return canonical_json({"total": total})  # DF106


def total_sorted(samples):
    pending = set(samples)
    total = sum(sorted(pending))
    return canonical_json({"total": total})  # clean
