# Fixture: DF104 — set-ordering iteration reaching journal payloads,
# and the sorted() sanitizer.
from repro.serve.journal import JobJournal


def journal_set_order(root, names):
    journal = JobJournal(root)
    pending = set(names)
    for name in pending:
        journal.append({"event": "seen", "name": name})  # DF104


def journal_sorted_order(root, names):
    journal = JobJournal(root)
    pending = set(names)
    for name in sorted(pending):
        journal.append({"event": "seen", "name": name})  # clean


def list_of_set(values):
    from repro.store.shard import canonical_json

    ordered = list({v for v in values})
    return canonical_json(ordered)  # DF104: list(set) -> canonical JSON
