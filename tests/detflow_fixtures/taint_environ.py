# Fixture: DF102 — environment/pid values reaching fingerprint input.
import os


def fingerprint(spec):
    return repr(spec)


def pid_in_identity():
    spec = {"pid": os.getpid()}
    return fingerprint(spec)  # DF102: pid -> fingerprint input


def env_in_identity():
    spec = {"home": os.environ["HOME"]}
    return fingerprint(spec)  # DF102: environ -> fingerprint input


def env_acknowledged():
    spec = {"home": os.environ.get("HOME", "")}
    return fingerprint(spec)  # detflow: ignore[DF102]
