# Fixture: DF101 — wall-clock time reaching byte-identity sinks,
# plus the sanctioned alternative (a manifest-excluded metric).
import time

from repro.store.shard import canonical_json


def stamp_into_artifact():
    started = time.time()
    payload = {"elapsed": started}
    return canonical_json(payload)  # DF101: wallclock -> canonical JSON


def stamp_into_excluded_metric(obs):
    elapsed = time.perf_counter()
    # campaign.drive_seconds is in WALL_CLOCK_METRICS: deterministic_dict
    # strips it, so the wall-clock value never reaches manifest bytes.
    obs.histogram("campaign.drive_seconds").observe(elapsed)


def stamp_into_included_metric(obs):
    elapsed = time.perf_counter()
    obs.gauge("campaign.tests_total").set(elapsed)  # DF101: not excluded


def field_sensitive_payload():
    result = {"payload": {"tests": 7}, "elapsed_s": time.perf_counter()}
    # Only the clean field reaches the sink: no finding.
    return canonical_json(result["payload"])
