# Fixture (interprocedural): the source lives here; the sink lives in
# flow_main.py.  detflow must carry the taint across the module edge
# and name both functions in the reported call chain.
import time


def now_seconds():
    return time.time()


def wrap_timing():
    return {"t": now_seconds()}
