# Fixture (interprocedural): sinks a value produced two calls away in
# flow_helper.py.
from flow_helper import wrap_timing

from repro.store.shard import canonical_json


def persist():
    record = wrap_timing()
    return canonical_json(record)  # DF101 via flow_helper.now_seconds
