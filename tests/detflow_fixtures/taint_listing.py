# Fixture: DF103 — unsorted directory listings reaching shard bytes,
# and the sorted() sanitizer clearing the taint.
import os

from repro.store.shard import ShardWriter


def write_listing_unsorted(root):
    writer = ShardWriter(root + "/out.jsonl", "fp", 0)
    for name in os.listdir(root):
        writer.append({"file": name})  # DF103: listing order -> shard


def write_listing_sorted(root):
    writer = ShardWriter(root + "/out.jsonl", "fp", 0)
    for name in sorted(os.listdir(root)):
        writer.append({"file": name})  # clean: sorted() sanitizes


def write_iterdir_unsorted(path):
    writer = ShardWriter(str(path / "out.jsonl"), "fp", 0)
    for entry in path.iterdir():
        writer.append({"file": str(entry)})  # DF103: iterdir order
