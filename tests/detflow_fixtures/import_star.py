# Fixture: DF001 — star imports are rejected, not guessed at.
from os.path import *  # DF001


def join_things(a, b):
    return join(a, b)
