# Fixture: DF105 — global RNG reaching fingerprint input; the
# repro.rng substream draw is the sanctioned (clean) path.
import random


def fingerprint(spec):
    return repr(spec)


def global_rng_identity():
    jitter = random.random()
    return fingerprint({"jitter": jitter})  # DF105: global RNG


def substream_identity(streams):
    rng = streams.get("campaign.jitter")
    jitter = rng.uniform(0.0, 1.0)
    return fingerprint({"jitter": jitter})  # clean: named substream
