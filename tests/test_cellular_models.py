"""Cellular substrate: carriers, deployment, propagation, capacity."""

import math

import numpy as np
import pytest

from repro.cellular.capacity import (
    BAND_BANDWIDTH_MHZ,
    CellLoad,
    UPLINK_FRACTION,
    achievable_rate,
    draw_band,
)
from repro.cellular.carriers import (
    ALL_CARRIERS,
    BAND_PEAK_DL_MBPS,
    Band,
    att,
    carrier_by_short_name,
    tmobile,
    verizon,
)
from repro.cellular.deployment import ServingCellTracker, nearest_site_distance_km
from repro.cellular.propagation import (
    CorrelatedShadowing,
    path_loss_db,
    shannon_efficiency,
    snr_db,
)
from repro.geo.classify import AreaType


def test_carrier_lookup():
    assert carrier_by_short_name("ATT").name == "AT&T"
    assert carrier_by_short_name("TM").name == "T-Mobile"
    assert carrier_by_short_name("VZ").name == "Verizon"
    with pytest.raises(KeyError):
        carrier_by_short_name("SPRINT")


def test_band_mixes_sum_to_one():
    for short in ALL_CARRIERS:
        carrier = carrier_by_short_name(short)
        for mix in carrier.band_mix.values():
            assert sum(mix.values()) == pytest.approx(1.0)


def test_deployment_density_follows_population():
    """Section 5.1's mechanism: urban sites are denser than rural ones."""
    for short in ALL_CARRIERS:
        carrier = carrier_by_short_name(short)
        assert (
            carrier.site_density[AreaType.URBAN]
            > carrier.site_density[AreaType.SUBURBAN]
            > carrier.site_density[AreaType.RURAL]
        )


def test_att_is_the_weak_carrier():
    """Paper: AT&T has the highest latency and worst coverage of the three."""
    assert att().core_rtt_ms > max(tmobile().core_rtt_ms, verizon().core_rtt_ms)
    assert att().hole_probability[AreaType.RURAL] >= max(
        tmobile().hole_probability[AreaType.RURAL],
        verizon().hole_probability[AreaType.RURAL],
    )
    assert att().site_density[AreaType.RURAL] <= min(
        tmobile().site_density[AreaType.RURAL],
        verizon().site_density[AreaType.RURAL],
    )


def test_nearest_site_distance_scales_with_density():
    gen = np.random.default_rng(0)
    dense = [nearest_site_distance_km(3.0, gen) for _ in range(2000)]
    sparse = [nearest_site_distance_km(0.03, gen) for _ in range(2000)]
    assert np.mean(dense) < np.mean(sparse)
    # Rayleigh mean: 0.5 / sqrt(density).
    assert np.mean(dense) == pytest.approx(0.5 / math.sqrt(3.0), rel=0.1)


def test_nearest_site_distance_rejects_bad_density():
    with pytest.raises(ValueError):
        nearest_site_distance_km(0.0, np.random.default_rng(0))


def test_serving_cell_tracker_handovers():
    gen = np.random.default_rng(1)
    tracker = ServingCellTracker(verizon(), gen)
    for _ in range(600):
        d = tracker.step(AreaType.URBAN, 60.0)
        assert d > 0.0
    assert tracker.handover_count > 1


def test_serving_cell_tracker_reattach_on_area_change():
    gen = np.random.default_rng(2)
    tracker = ServingCellTracker(verizon(), gen)
    tracker.step(AreaType.URBAN, 50.0)
    count = tracker.handover_count
    tracker.step(AreaType.RURAL, 50.0)
    assert tracker.handover_count == count + 1


def test_path_loss_monotone():
    losses = [path_loss_db(d) for d in (0.1, 0.5, 1.0, 3.0, 10.0)]
    assert losses == sorted(losses)


def test_path_loss_rejects_nonpositive():
    with pytest.raises(ValueError):
        path_loss_db(0.0)


def test_snr_decreases_with_distance():
    gen = np.random.default_rng(3)
    near = np.mean([snr_db(0.2, gen) for _ in range(500)])
    far = np.mean([snr_db(5.0, gen) for _ in range(500)])
    assert near > far


def test_shannon_efficiency_monotone_and_capped():
    values = [shannon_efficiency(s) for s in (-10.0, 0.0, 10.0, 20.0, 60.0)]
    assert values == sorted(values)
    assert values[-1] == 7.4
    assert values[0] > 0.0


def test_correlated_shadowing_is_correlated():
    gen = np.random.default_rng(4)
    process = CorrelatedShadowing(gen)
    series = [process.step(30.0) for _ in range(500)]
    lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
    assert lag1 > 0.5


def test_shadowing_decorrelates_faster_at_speed():
    slow = CorrelatedShadowing(np.random.default_rng(5))
    fast = CorrelatedShadowing(np.random.default_rng(5))
    s_series = [slow.step(10.0) for _ in range(800)]
    f_series = [fast.step(120.0) for _ in range(800)]
    lag_slow = np.corrcoef(s_series[:-1], s_series[1:])[0, 1]
    lag_fast = np.corrcoef(f_series[:-1], f_series[1:])[0, 1]
    assert lag_slow > lag_fast


def test_achievable_rate_band_ordering():
    dl_lte, _ = achievable_rate(Band.LTE, 20.0, 0.6)
    dl_mid, _ = achievable_rate(Band.MID_BAND_5G, 20.0, 0.6)
    assert dl_mid > dl_lte


def test_achievable_rate_caps_at_band_peak():
    dl, ul = achievable_rate(Band.LTE, 60.0, 1.0)
    assert dl == BAND_PEAK_DL_MBPS[Band.LTE]
    assert ul <= dl


def test_achievable_rate_uplink_fraction():
    dl, ul = achievable_rate(Band.MID_BAND_5G, 15.0, 0.5)
    assert ul < dl * UPLINK_FRACTION * 1.5


def test_achievable_rate_rejects_bad_share():
    with pytest.raises(ValueError):
        achievable_rate(Band.LTE, 10.0, 0.0)


def test_draw_band_respects_mix():
    gen = np.random.default_rng(6)
    mix = {Band.LTE: 0.8, Band.LOW_BAND_5G: 0.2, Band.MID_BAND_5G: 0.0}
    draws = [draw_band(mix, gen) for _ in range(1000)]
    assert draws.count(Band.MID_BAND_5G) == 0
    assert 0.7 < draws.count(Band.LTE) / 1000 < 0.9


def test_cell_load_busier_in_cities():
    gen = np.random.default_rng(7)
    load = CellLoad(gen)
    urban = np.mean([1.0 - load.step(AreaType.URBAN) for _ in range(500)])
    load2 = CellLoad(np.random.default_rng(7))
    rural = np.mean([1.0 - load2.step(AreaType.RURAL) for _ in range(500)])
    assert urban > rural


def test_bandwidths_defined_for_all_bands():
    assert set(BAND_BANDWIDTH_MHZ) == set(Band)
