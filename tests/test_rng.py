"""Seeded RNG substreams."""

import pytest

from repro.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7).get("leo").random(5)
    b = RngStreams(7).get("leo").random(5)
    assert list(a) == list(b)


def test_different_names_differ():
    streams = RngStreams(7)
    a = streams.get("leo").random(5)
    b = streams.get("cellular").random(5)
    assert list(a) != list(b)


def test_order_independent():
    """Requesting streams in a different order must not change them."""
    s1 = RngStreams(3)
    _ = s1.get("a").random(100)
    b_first = list(s1.get("b").random(5))

    s2 = RngStreams(3)
    b_only = list(s2.get("b").random(5))
    assert b_first == b_only


def test_get_returns_same_generator_instance():
    streams = RngStreams(1)
    assert streams.get("x") is streams.get("x")


def test_fork_independence():
    base = RngStreams(5)
    f1 = base.fork(1).get("x").random(5)
    f2 = base.fork(2).get("x").random(5)
    assert list(f1) != list(f2)


def test_fork_deterministic():
    assert list(RngStreams(5).fork(3).get("x").random(4)) == list(
        RngStreams(5).fork(3).get("x").random(4)
    )


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngStreams(-1)
