"""Measurement tools: iPerf harness, UDP-Ping, tracker."""

import pytest

from repro.conditions import LinkConditions, outage
from repro.geo.classify import AreaClassifier
from repro.geo.mobility import VehicleTrace
from repro.geo.places import PlaceDatabase
from repro.geo.routes import RouteGenerator
from repro.rng import RngStreams
from repro.tools.iperf import (
    binned_series_mbps,
    run_tcp_test,
    run_udp_test,
)
from repro.tools.tracker import Tracker
from repro.tools.udp_ping import run_udp_ping


def flat(rate=50.0, seconds=30, rtt=40.0, loss=0.0, burst=1.0):
    return [
        LinkConditions(float(t), rate, rate / 10.0, rtt, loss, loss_burst=burst)
        for t in range(seconds)
    ]


def test_run_udp_test_measures_capacity():
    result = run_udp_test(flat(rate=40.0), duration_s=20.0)
    assert result.throughput_mbps == pytest.approx(40.0, rel=0.1)
    assert result.protocol == "udp"
    assert len(result.series_mbps) == 20


def test_run_udp_test_uplink():
    result = run_udp_test(flat(rate=40.0), duration_s=20.0, downlink=False)
    assert result.throughput_mbps == pytest.approx(4.0, rel=0.15)


def test_run_tcp_test_clean():
    result = run_tcp_test(flat(rate=40.0, seconds=30), duration_s=30.0)
    assert result.throughput_mbps > 30.0
    assert result.retransmission_rate < 0.02


def test_run_tcp_parallel_beats_single_on_lossy():
    lossy = flat(rate=80.0, seconds=60, rtt=60.0, loss=0.008, burst=40.0)
    single = run_tcp_test(lossy, duration_s=60.0, parallel=1, seed=1)
    eight = run_tcp_test(lossy, duration_s=60.0, parallel=8, seed=1)
    assert eight.throughput_mbps > 1.2 * single.throughput_mbps


def test_run_tcp_test_validation():
    with pytest.raises(ValueError):
        run_tcp_test(flat(), duration_s=0.0)


def test_binned_series():
    log = [(0.5, 10), (0.9, 10), (1.5, 20)]
    series = binned_series_mbps(log, 2.0, segment_bytes=1500)
    assert series[0] == pytest.approx(20 * 1500 * 8 / 1e6)
    assert series[1] == pytest.approx(20 * 1500 * 8 / 1e6)
    with pytest.raises(ValueError):
        binned_series_mbps(log, 2.0, 1500, bin_s=0.0)


def test_udp_ping_rtt_matches_channel():
    result = run_udp_ping(flat(rtt=60.0, seconds=100))
    assert result.median_ms == pytest.approx(60.0, abs=2.0)
    assert result.probes_sent == 100
    assert result.loss_rate < 0.05


def test_udp_ping_counts_outages_as_loss():
    samples = flat(seconds=50) + [outage(float(t)) for t in range(50, 100)]
    result = run_udp_ping(samples)
    assert result.loss_rate == pytest.approx(0.5, abs=0.05)


def test_udp_ping_loss_applied_both_ways():
    result = run_udp_ping(flat(seconds=4000, loss=0.1), seed=1)
    # 1 - (1-0.1)^2 = 0.19.
    assert result.loss_rate == pytest.approx(0.19, abs=0.03)


def test_udp_ping_validation():
    with pytest.raises(ValueError):
        run_udp_ping(flat(), probes_per_second=0.0)


def test_udp_ping_percentiles():
    result = run_udp_ping(flat(rtt=60.0, seconds=100))
    assert result.percentile_ms(10) <= result.percentile_ms(90)


@pytest.fixture(scope="module")
def tracker_run():
    rng = RngStreams(4)
    places = PlaceDatabase.synthetic(rng)
    gen = RouteGenerator(places, rng)
    cities = places.cities()
    route = gen.interstate_drive("tracker-test", cities[0], cities[1])
    trace = VehicleTrace(route, rng)
    tracker = Tracker(AreaClassifier(places))
    for sample in trace.samples[:1200]:
        tracker.observe(sample)
    return tracker


def test_tracker_records_metadata(tracker_run):
    assert len(tracker_run.records) == 1200
    rec = tracker_run.records[500]
    assert rec.speed_kmh >= 0.0
    assert rec.route_km >= 0.0


def test_tracker_totals(tracker_run):
    assert tracker_run.duration_minutes == pytest.approx(1199 / 60.0, rel=0.01)
    assert tracker_run.distance_km > 1.0


def test_tracker_area_proportions(tracker_run):
    proportions = tracker_run.area_proportions()
    assert sum(proportions.values()) == pytest.approx(1.0)
