"""Congestion-control algorithms in isolation."""

import pytest

from repro.transport.congestion import Cubic, Reno, make_congestion_control


def test_factory():
    assert isinstance(make_congestion_control("reno"), Reno)
    assert isinstance(make_congestion_control("cubic"), Cubic)
    with pytest.raises(KeyError):
        make_congestion_control("bbr")


def test_reno_slow_start_doubles_per_window():
    cc = Reno()
    start = cc.cwnd
    cc.on_ack(int(start), 0.05, 0.0)
    assert cc.cwnd == pytest.approx(2 * start)


def test_reno_congestion_avoidance_linear():
    cc = Reno()
    cc.ssthresh = 10.0
    cc.cwnd = 10.0
    cc.on_ack(10, 0.05, 0.0)
    assert cc.cwnd == pytest.approx(11.0)


def test_reno_halves_on_loss():
    cc = Reno()
    cc.cwnd = 100.0
    cc.on_loss(1.0)
    assert cc.cwnd == pytest.approx(50.0)
    assert cc.ssthresh == pytest.approx(50.0)


def test_reno_rto_uses_flightsize():
    cc = Reno()
    cc.cwnd = 10.0
    cc.on_rto(1.0, inflight=900)
    assert cc.cwnd == 2.0
    assert cc.ssthresh == pytest.approx(450.0)


def test_ack_growth_capped_at_window():
    """A cumulative ACK covering a filled hole must not explode the window."""
    for cc in (Reno(), Cubic()):
        cc.ssthresh = 5.0
        cc.cwnd = 5.0
        before = cc.cwnd
        cc.on_ack(10_000, 0.05, 10.0)
        assert cc.cwnd <= 2.1 * before


def test_cubic_beta_on_loss():
    cc = Cubic()
    cc.cwnd = 100.0
    cc.on_loss(1.0)
    assert cc.cwnd == pytest.approx(70.0)


def test_cubic_regrows_toward_wmax():
    cc = Cubic()
    cc.cwnd = 100.0
    cc.ssthresh = 100.0
    cc.on_loss(0.0)
    low = cc.cwnd
    now = 0.0
    for _ in range(400):
        now += 0.05
        cc.on_ack(int(cc.cwnd), 0.05, now)
    assert cc.cwnd > low
    assert cc.cwnd > 95.0  # back near the old peak within ~20 s


def test_cubic_fast_convergence():
    cc = Cubic()
    cc.cwnd = 100.0
    cc.on_loss(0.0)
    first_wmax = cc._w_max
    cc.on_loss(1.0)  # second loss below the old peak
    assert cc._w_max < first_wmax


def test_min_cwnd_floor():
    for cc in (Reno(), Cubic()):
        for _ in range(20):
            cc.on_loss(0.0)
        assert cc.cwnd >= 2.0


def test_zero_ack_noop():
    cc = Cubic()
    before = cc.cwnd
    cc.on_ack(0, 0.05, 0.0)
    assert cc.cwnd == before
