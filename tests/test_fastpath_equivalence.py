"""Golden + property equivalence harness for the campaign fast path.

The contract under test (``docs/PERFORMANCE.md``): a campaign run with
``CampaignConfig.fastpath=True`` — precomputed geometry timelines,
scalar-lane fluid models, inlined channel samplers — produces
**byte-identical** artifacts to the reference path (``fastpath=False``):
dataset JSON, checkpoint JSON, campaign report, and the deterministic
view of the run manifest.  The golden tests push every figure-relevant
scenario through both paths — LEO and cellular networks, faults on and
off, coverage outages, parallel TCP flows, finite buffer caps, multiple
seeds, multiple worker counts — and the property tests drive the fast
and reference components with hypothesis-generated ``LinkConditions``
traces, asserting bitwise-equal outputs *and* equal RNG stream state
after every step.

The worker-count golden test honours ``REPRO_EQUIV_WORKERS`` (default 4)
so CI can bound runtime by running it at 2 workers.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import sys
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cellular.carriers import carrier_by_short_name
from repro.cellular.channel import CellularChannel
from repro.conditions import ConditionsArray, LinkConditions, outage
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.dataset import CELLULAR_NETWORKS, STARLINK_NETWORKS
from repro.core.fastpath import GeometryTimeline
from repro.core.fastpath.channels import CellularChannelFast, StarlinkChannelFast
from repro.core.fastpath.fluid import (
    FluidTcpFast,
    fluid_tcp_series_fast,
    fluid_udp_series_fast,
)
from repro.core.fluid import FluidTcp, fluid_tcp_series, fluid_udp_series
from repro.faults import generate_schedule
from repro.geo.classify import AreaClassifier, AreaType
from repro.geo.coords import GeoPoint
from repro.geo.places import PlaceDatabase
from repro.leo.channel import StarlinkChannel
from repro.leo.constellation import Constellation
from repro.leo.dish import DishPlan, dish_for_plan
from repro.leo.gateway import GatewayNetwork
from repro.leo.visibility import VisibilityModel
from repro.obs import ObsRecorder
from repro.rng import RngStreams

#: Worker count for the parallel golden test (CI pins this to 2).
EQUIV_WORKERS = int(os.environ.get("REPRO_EQUIV_WORKERS", "4"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- campaign-level golden equivalence -----------------------------------


def _scenario_config(seed: int, faults: bool, workers: int = 1) -> CampaignConfig:
    """A small campaign that still exercises the full test cycle.

    Nine windows per drive cover every ``DEFAULT_CYCLE`` entry — UDP
    up/down, ping, and TCP at 1, 4, and 8 parallel flows.
    """
    config = CampaignConfig(
        seed=seed,
        num_interstate_drives=2,
        num_city_drives=0,
        max_drive_seconds=400.0,
        test_duration_s=30.0,
        window_period_s=40.0,
        workers=workers,
    )
    if faults:
        config.fault_schedule = generate_schedule(
            seed=seed, num_drives=2, drive_duration_s=400.0, intensity=3.0
        )
    return config


def _run_artifacts(config: CampaignConfig, tmp_path, label: str) -> dict:
    campaign = Campaign(config, recorder=ObsRecorder())
    ckpt = tmp_path / f"{label}.ckpt.json"
    dataset = campaign.run(checkpoint_path=ckpt)
    data = tmp_path / f"{label}.dataset.json"
    dataset.save_json(data)
    report = campaign.report.to_dict()
    report.pop("checkpoint_path")
    return {
        "ckpt": ckpt.read_bytes(),
        "dataset": data.read_bytes(),
        "report": report,
        "manifest": campaign.manifest.deterministic_blob(),
        "records": dataset.records,
        "fault_outage_seconds": campaign.report.fault_outage_seconds,
    }


@pytest.mark.parametrize(
    ("seed", "faults"), [(0, False), (3, True), (11, True)]
)
def test_fastpath_byte_identical_to_reference(tmp_path, seed, faults):
    """The keystone: fast vs. reference artifacts agree byte for byte,
    across seeds and with fault injection on and off."""
    fast = _run_artifacts(_scenario_config(seed, faults), tmp_path, "fast")
    reference = _run_artifacts(
        replace(_scenario_config(seed, faults), fastpath=False),
        tmp_path,
        "reference",
    )
    assert fast["ckpt"] == reference["ckpt"]
    assert fast["dataset"] == reference["dataset"]
    assert fast["report"] == reference["report"]
    assert fast["manifest"] == reference["manifest"]

    # The scenario actually covers what the figures need: both network
    # families, every protocol, parallel flows, and (with faults) outages.
    records = fast["records"]
    networks = {r.network for r in records}
    assert networks >= set(STARLINK_NETWORKS) | set(CELLULAR_NETWORKS)
    assert {r.protocol for r in records} == {"tcp", "udp", "ping"}
    assert {r.parallel for r in records} >= {1, 4, 8}
    if faults:
        assert fast["fault_outage_seconds"] > 0.0


def test_fastpath_byte_identical_across_worker_counts(tmp_path):
    """Fast-path runs at 1 and N workers both match the serial reference."""
    reference = _run_artifacts(
        replace(_scenario_config(7, True), fastpath=False), tmp_path, "ref"
    )
    for workers in (1, EQUIV_WORKERS):
        fast = _run_artifacts(
            _scenario_config(7, True, workers=workers), tmp_path, f"w{workers}"
        )
        assert fast["ckpt"] == reference["ckpt"], workers
        assert fast["dataset"] == reference["dataset"], workers
        assert fast["report"] == reference["report"], workers
        assert fast["manifest"] == reference["manifest"], workers


def test_fastpath_excluded_from_fingerprint():
    """Reference checkpoints must resume under the fast path and back."""
    config = _scenario_config(0, False)
    assert config.fingerprint() == replace(config, fastpath=False).fingerprint()


# -- seed-sweep determinism across processes -----------------------------

_SUBPROCESS_DIGEST = """
import hashlib, json, sys
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.dataset import record_to_dict
from repro.obs import ObsRecorder

campaign = Campaign(CampaignConfig.smoke(seed=int(sys.argv[1])),
                    recorder=ObsRecorder())
dataset = campaign.run()
blob = json.dumps(
    [record_to_dict(r) for r in dataset.records], sort_keys=True
).encode()
digest = hashlib.sha256(blob + campaign.manifest.deterministic_blob()).hexdigest()
print(digest)
"""


def _subprocess_digest(seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    # Fresh hash randomization per process: any dict/set-order leak into
    # the artifacts would break the cross-process byte identity.
    env.pop("PYTHONHASHSEED", None)
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_DIGEST, str(seed)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout.strip()


def test_seed_sweep_deterministic_across_processes():
    """Same seed → byte-identical artifacts in separate interpreters
    (fresh hash randomization); distinct seeds → distinct artifacts."""
    first = _subprocess_digest(3)
    second = _subprocess_digest(3)
    other = _subprocess_digest(4)
    assert first == second
    assert first != other


# -- channel-level equivalence -------------------------------------------


def _synthetic_trace(n: int):
    """A drive-like 1 Hz trace: motion, speed, and area churn."""
    areas = (AreaType.RURAL, AreaType.SUBURBAN, AreaType.URBAN)
    times = [float(t) for t in range(n)]
    points = [
        GeoPoint(41.0 + 0.0004 * t, -93.5 + 0.0012 * t) for t in range(n)
    ]
    speeds = [95.0 + 0.1 * (t % 20) for t in range(n)]
    trace_areas = [areas[(t // 60) % 3] for t in range(n)]
    return times, points, speeds, trace_areas


def _shared_world():
    setup = RngStreams(5)
    places = PlaceDatabase.synthetic(setup)
    constellation = Constellation()
    gateways = GatewayNetwork.synthetic(places, setup)
    return places, constellation, gateways


def _rng_state(gen: np.random.Generator) -> dict:
    return gen.bit_generator.state


def test_starlink_channel_fast_matches_reference():
    """Timeline-backed fast sampler vs. the per-second reference: equal
    conditions every second, equal RNG stream state at the end."""
    places, constellation, gateways = _shared_world()
    times, points, speeds, areas = _synthetic_trace(240)
    dish = dish_for_plan(DishPlan.ROAM)
    reference = StarlinkChannel(
        dish, constellation=constellation, gateways=gateways,
        places=places, rng=RngStreams(21),
    )
    fast = StarlinkChannelFast(
        dish, constellation=constellation, gateways=gateways,
        places=places, rng=RngStreams(21),
    )
    fast.attach_timeline(
        GeometryTimeline(constellation, gateways, times, points)
    )
    for t in range(240):
        a = reference.sample(times[t], points[t], speeds[t], areas[t])
        b = fast.sample(times[t], points[t], speeds[t], areas[t])
        assert a == b, f"diverged at t={t}: {a} != {b}"
    assert _rng_state(fast._gen) == _rng_state(reference._gen)


def test_starlink_channel_fast_without_timeline_matches_reference():
    """No timeline attached: the fast class falls back to the reference
    per-second geometry and must still agree bitwise."""
    places, constellation, gateways = _shared_world()
    times, points, speeds, areas = _synthetic_trace(60)
    dish = dish_for_plan(DishPlan.MOBILITY)
    reference = StarlinkChannel(
        dish, constellation=constellation, gateways=gateways,
        places=places, rng=RngStreams(8),
    )
    fast = StarlinkChannelFast(
        dish, constellation=constellation, gateways=gateways,
        places=places, rng=RngStreams(8),
    )
    for t in range(60):
        assert reference.sample(
            times[t], points[t], speeds[t], areas[t]
        ) == fast.sample(times[t], points[t], speeds[t], areas[t])
    assert _rng_state(fast._gen) == _rng_state(reference._gen)


@pytest.mark.parametrize("carrier_name", CELLULAR_NETWORKS)
def test_cellular_channel_fast_matches_reference(carrier_name):
    carrier = carrier_by_short_name(carrier_name)
    reference = CellularChannel(carrier, RngStreams(9))
    fast = CellularChannelFast(carrier, RngStreams(9))
    times, points, speeds, areas = _synthetic_trace(300)
    for t in range(300):
        a = reference.sample(times[t], points[t], speeds[t], areas[t])
        b = fast.sample(times[t], points[t], speeds[t], areas[t])
        assert a == b, f"{carrier_name} diverged at t={t}: {a} != {b}"
    assert _rng_state(fast._gen) == _rng_state(reference._gen)
    assert fast.tracker.handover_count == reference.tracker.handover_count


# -- timeline vs. per-second geometry ------------------------------------


def test_timeline_visible_matches_visibility_model():
    """Precomputed candidate tables replay the reference visibility scan
    exactly — same satellites, same order, same floats — under random
    obstruction masks and blocked azimuth wedges."""
    _, constellation, gateways = _shared_world()
    times, points, _, _ = _synthetic_trace(120)
    timeline = GeometryTimeline(constellation, gateways, times, points)
    visibility = VisibilityModel(constellation)
    dish = dish_for_plan(DishPlan.ROAM)
    gen = np.random.default_rng(3)
    for t in range(0, 120, 7):
        fraction = float(gen.uniform(0.0, 0.9))
        sectors = VisibilityModel.random_blocked_sectors(fraction, gen)
        t_idx = timeline.index_of(times[t])
        assert t_idx is not None
        assert timeline.visible(
            t_idx, dish, obstruction_fraction=fraction, blocked_sectors=sectors
        ) == visibility.visible_satellites(
            points[t], times[t], dish,
            obstruction_fraction=fraction, blocked_sectors=sectors,
        )


def test_timeline_rtt_matches_gateway_network():
    """Cached bent-pipe RTTs equal the reference gateway search bitwise."""
    _, constellation, gateways = _shared_world()
    times, points, _, _ = _synthetic_trace(120)
    timeline = GeometryTimeline(constellation, gateways, times, points)
    dish = dish_for_plan(DishPlan.ROAM)
    checked = 0
    for t in (0, 31, 77, 119):
        t_idx = timeline.index_of(times[t])
        positions = constellation.positions_ecef_km(times[t])
        for candidate in timeline.visible(t_idx, dish)[:3]:
            assert timeline.bent_pipe_rtt_ms(
                t_idx, candidate.index, scheduling_ms=2.5
            ) == gateways.bent_pipe_rtt_ms(
                points[t], positions[candidate.index], scheduling_ms=2.5
            )
            checked += 1
    assert checked > 0


# -- fluid-model equivalence ---------------------------------------------

conditions_st = st.builds(
    LinkConditions,
    time_s=st.floats(min_value=0.0, max_value=1e5),
    downlink_mbps=st.floats(min_value=0.0, max_value=500.0),
    uplink_mbps=st.floats(min_value=0.0, max_value=50.0),
    rtt_ms=st.floats(min_value=0.0, max_value=1500.0),
    loss_rate=st.floats(min_value=0.0, max_value=1.0),
    loss_burst=st.floats(min_value=1.0, max_value=200.0),
)


def _fluid_trace(seed: int, n: int = 400) -> list[LinkConditions]:
    """A deterministic trace with capacity churn and outage bursts."""
    gen = np.random.default_rng(seed)
    samples: list[LinkConditions] = []
    for t in range(n):
        if gen.random() < 0.05:
            samples.append(outage(float(t)))
            continue
        samples.append(
            LinkConditions(
                time_s=float(t),
                downlink_mbps=float(gen.uniform(0.0, 300.0)),
                uplink_mbps=float(gen.uniform(0.0, 30.0)),
                rtt_ms=float(gen.uniform(1.0, 800.0)),
                loss_rate=float(gen.uniform(0.0, 0.2)),
                loss_burst=float(gen.uniform(1.0, 60.0)),
            )
        )
    return samples


@pytest.mark.parametrize(
    ("parallel", "buffer_bytes"),
    [(1, float("inf")), (4, float("inf")), (8, 3e5), (2, 6e4)],
)
def test_fluid_tcp_fast_matches_reference(parallel, buffer_bytes):
    """Scalar lanes vs. array reference: equal goodput each second, equal
    internal state, equal RNG stream — including finite buffer caps."""
    samples = _fluid_trace(parallel, n=400)
    reference = FluidTcp(parallel=parallel, buffer_bytes=buffer_bytes, seed=11)
    fast = FluidTcpFast(parallel=parallel, buffer_bytes=buffer_bytes, seed=11)
    for sample in samples:
        assert fast.step(sample) == reference.step(sample)
        assert fast._cwnd == reference._cwnd.tolist()
        assert fast._ssthresh == reference._ssthresh.tolist()
        assert fast._w_max == reference._w_max.tolist()
        assert fast._epoch_s == reference._epoch_s.tolist()
    assert _rng_state(fast._gen) == _rng_state(reference._gen)
    # reset() restarts both models into the same (still-equal) state.
    reference.reset()
    fast.reset()
    for sample in samples[:50]:
        assert fast.step(sample, downlink=False) == reference.step(
            sample, downlink=False
        )
    assert _rng_state(fast._gen) == _rng_state(reference._gen)


@given(
    samples=st.lists(conditions_st, min_size=1, max_size=60),
    seed=st.integers(0, 2**32 - 1),
    parallel=st.integers(1, 8),
    downlink=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_fluid_tcp_fast_bitwise_property(samples, seed, parallel, downlink):
    """Hypothesis-driven bit-identity over arbitrary LinkConditions."""
    reference = FluidTcp(parallel=parallel, seed=seed)
    fast = FluidTcpFast(parallel=parallel, seed=seed)
    for sample in samples:
        assert fast.step(sample, downlink=downlink) == reference.step(
            sample, downlink=downlink
        )
    assert fast._cwnd == reference._cwnd.tolist()
    assert _rng_state(fast._gen) == _rng_state(reference._gen)


@given(
    samples=st.lists(conditions_st, min_size=1, max_size=80),
    downlink=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_fluid_udp_series_fast_matches_reference(samples, downlink):
    reference = fluid_udp_series(samples, downlink=downlink)
    assert fluid_udp_series_fast(samples, downlink=downlink) == reference
    packed = ConditionsArray.from_samples(samples)
    assert fluid_udp_series_fast(packed, downlink=downlink) == reference


def test_fluid_tcp_series_fast_matches_reference():
    samples = _fluid_trace(3, n=300)
    for parallel in (1, 4):
        reference = fluid_tcp_series(samples, parallel=parallel, seed=5)
        assert (
            fluid_tcp_series_fast(samples, parallel=parallel, seed=5)
            == reference
        )
        packed = ConditionsArray.from_samples(samples)
        assert (
            fluid_tcp_series_fast(packed, parallel=parallel, seed=5)
            == reference
        )


@given(st.lists(conditions_st, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_conditions_array_round_trip(samples):
    """list[LinkConditions] → ConditionsArray → list is lossless."""
    packed = ConditionsArray.from_samples(samples)
    assert len(packed) == len(samples)
    assert packed.to_samples() == samples
    assert packed[0] == samples[0]
    assert list(packed) == samples


# -- vectorized geometry helpers vs. their scalar forms ------------------


def test_vectorized_geo_helpers_match_scalar():
    """nearest_many / classify_many replay the per-point methods exactly."""
    places, _, _ = _shared_world()
    classifier = AreaClassifier(places)
    _, points, _, _ = _synthetic_trace(150)
    lat = np.asarray([p.lat_deg for p in points])
    lon = np.asarray([p.lon_deg for p in points])
    idx, dist = places.nearest_many(lat, lon)
    for i, point in enumerate(points):
        place, d = places.nearest_distance_km(point)
        assert places.places[int(idx[i])] is place
        assert float(dist[i]) == d
    assert classifier.classify_many(points) == [
        classifier.classify(p) for p in points
    ]


def test_scalar_replacements_are_bitwise():
    """The scalar substitutions the fast path leans on hold bitwise:
    math ufunc twins and conditional min/max vs. np.clip."""
    gen = np.random.default_rng(0)
    for x in gen.uniform(-4.0, 4.0, size=2000).tolist():
        assert math.sin(x) == float(np.sin(np.float64(x)))
        assert math.cos(x) == float(np.cos(np.float64(x)))
        assert math.sqrt(abs(x)) == float(np.sqrt(np.float64(abs(x))))
        clipped = x
        if clipped < -1.0:
            clipped = -1.0
        elif clipped > 1.0:
            clipped = 1.0
        assert clipped == float(np.clip(x, -1.0, 1.0))


def test_dataset_digest_helper_is_stable():
    """The digest recipe the benchmark + subprocess tests share really is
    a pure function of the records (field order independent)."""
    sample = {"b": 1.5, "a": [1, 2]}
    blob = json.dumps(sample, sort_keys=True).encode()
    blob2 = json.dumps({"a": [1, 2], "b": 1.5}, sort_keys=True).encode()
    assert hashlib.sha256(blob).hexdigest() == hashlib.sha256(blob2).hexdigest()
