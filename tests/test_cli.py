"""The ``python -m repro.experiments`` entry point."""

import pytest

from repro.experiments.__main__ import main


def test_list_mode(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out
    assert "fig10" in out


def test_run_small_experiment(capsys):
    assert main(["dataset", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "tests" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig2"])


def test_duration_passthrough(capsys):
    assert main(["fig1", "--duration", "120", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "MOB" in out
