"""Starlink channel model behaviour."""

import numpy as np
import pytest

from repro.geo.classify import AreaType
from repro.geo.coords import GeoPoint
from repro.geo.places import PlaceDatabase
from repro.leo.channel import RAIN, StarlinkChannel
from repro.leo.dish import mobility_dish, roam_dish
from repro.rng import RngStreams

POSITION = GeoPoint(44.5, -92.0)


def make_channel(dish_factory=mobility_dish, seed=0, weather=None):
    rng = RngStreams(seed)
    places = PlaceDatabase.synthetic(rng)
    kwargs = {"places": places, "rng": rng}
    if weather is not None:
        kwargs["weather"] = weather
    return StarlinkChannel(dish_factory(), **kwargs)


def run_channel(channel, seconds=400, area=AreaType.RURAL, speed=90.0):
    return [
        channel.sample(float(t), POSITION, speed, area) for t in range(seconds)
    ]


def test_samples_well_formed():
    for sample in run_channel(make_channel(), 200):
        assert sample.downlink_mbps >= 0.0
        assert sample.uplink_mbps >= 0.0
        assert 0.0 <= sample.loss_rate <= 1.0
        assert sample.rtt_ms > 0.0


def test_fdd_downlink_dominates_uplink():
    samples = [s for s in run_channel(make_channel()) if not s.is_outage]
    dl = np.mean([s.downlink_mbps for s in samples])
    ul = np.mean([s.uplink_mbps for s in samples])
    assert dl / ul == pytest.approx(10.0, rel=0.05)


def test_mobility_outperforms_roam():
    mob = run_channel(make_channel(mobility_dish, seed=1))
    rm = run_channel(make_channel(roam_dish, seed=1))
    assert np.mean([s.downlink_mbps for s in mob]) > np.mean(
        [s.downlink_mbps for s in rm]
    )


def test_urban_worse_than_rural():
    urban = run_channel(make_channel(seed=2), area=AreaType.URBAN)
    rural = run_channel(make_channel(seed=2), area=AreaType.RURAL)
    assert np.mean([s.downlink_mbps for s in urban]) < np.mean(
        [s.downlink_mbps for s in rural]
    )


def test_outages_occur_in_motion():
    samples = run_channel(make_channel(seed=3), 600, area=AreaType.SUBURBAN)
    outage_share = np.mean([s.is_outage for s in samples])
    assert 0.05 <= outage_share <= 0.6


def test_rtt_in_paper_band():
    """Figure 4: Starlink RTTs mostly between ~40 and ~120 ms."""
    samples = [s for s in run_channel(make_channel(seed=4), 500) if not s.is_outage]
    rtts = np.array([s.rtt_ms for s in samples])
    assert 40.0 <= np.median(rtts) <= 100.0
    assert np.mean((rtts >= 40.0) & (rtts <= 150.0)) > 0.8


def test_loss_rate_in_paper_band():
    """Figure 5: Starlink retransmission rates 0.3-1.3 %; the channel's
    random loss must land in that neighbourhood."""
    samples = [s for s in run_channel(make_channel(seed=5), 600) if not s.is_outage]
    mean_loss = np.mean([s.loss_rate for s in samples])
    assert 0.002 <= mean_loss <= 0.02


def test_loss_is_bursty():
    samples = run_channel(make_channel(seed=6), 100)
    assert all(s.loss_burst > 10.0 for s in samples if not s.is_outage)


def test_rain_reduces_capacity():
    clear = run_channel(make_channel(seed=7), 400)
    rain = run_channel(make_channel(seed=7, weather=RAIN), 400)
    clear_mean = np.mean([s.downlink_mbps for s in clear if not s.is_outage])
    rain_mean = np.mean([s.downlink_mbps for s in rain if not s.is_outage])
    assert rain_mean < clear_mean


def test_stationary_beats_fast_roam():
    """Roam's tracking penalty applies in motion, not when parked."""
    parked = run_channel(make_channel(roam_dish, seed=8), 300, speed=0.0)
    moving = run_channel(make_channel(roam_dish, seed=8), 300, speed=90.0)
    parked_mean = np.mean([s.downlink_mbps for s in parked if not s.is_outage])
    moving_mean = np.mean([s.downlink_mbps for s in moving if not s.is_outage])
    assert parked_mean > moving_mean


def test_speed_above_threshold_flat():
    """Figure 6: 40 vs 90 km/h should look the same (both fully in motion)."""
    a = run_channel(make_channel(seed=9), 400, speed=40.0)
    b = run_channel(make_channel(seed=9), 400, speed=90.0)
    mean_a = np.mean([s.downlink_mbps for s in a if not s.is_outage])
    mean_b = np.mean([s.downlink_mbps for s in b if not s.is_outage])
    assert mean_a == pytest.approx(mean_b, rel=0.25)


def test_reset_clears_state():
    channel = make_channel(seed=10)
    run_channel(channel, 50)
    channel.reset()
    assert channel.handover._serving == -1
