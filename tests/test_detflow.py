"""detflow: every taint class fires on its seeded fixture and is
correctly sanitizer-suppressed, taint crosses module boundaries with
the full call chain reported, crash-boundary coverage fails closed,
fork-safety flags live captures, and the self-scan of src/repro is
clean.

The fixtures in ``tests/detflow_fixtures/`` each contain exactly the
flows their comments name, at pinned line numbers.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.tools.detflow import run_paths
from repro.tools.detflow.__main__ import main
from repro.tools.detlint.engine import Finding

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"
TESTS = Path(__file__).resolve().parent
FIXTURES = TESTS / "detflow_fixtures"
COVERAGE_PROJ = FIXTURES / "coverage_proj"


def codes_and_lines(findings: list[Finding]) -> set[tuple[str, int]]:
    return {(f.code, f.line) for f in findings}


def scan(*paths: Path, tests_dir: Path | None = TESTS, **kwargs) -> list[Finding]:
    return run_paths(
        [str(p) for p in paths],
        tests_dir=str(tests_dir) if tests_dir else None,
        **kwargs,
    )


# -- each taint class: caught AND sanitizer-suppressed -------------------
# Every fixture contains both the tainted flow (pinned lines below) and
# its sanctioned twin; the exact-set assertion proves the sanitized
# variant produced nothing.

@pytest.mark.parametrize(
    ("fixture", "expected"),
    [
        # wallclock -> canonical JSON + non-excluded metric; the
        # WALL_CLOCK_METRICS-excluded observe() and the field-sensitive
        # clean-payload sink stay silent.
        ("taint_wallclock.py", {("DF101", 11), ("DF101", 23)}),
        # pid/environ -> fingerprint; the detflow: ignore[DF102] line
        # stays silent (and its suppression counts as used).
        ("taint_environ.py", {("DF102", 11), ("DF102", 16)}),
        # unsorted listdir/iterdir -> shard; sorted() variant silent.
        ("taint_listing.py", {("DF103", 11), ("DF103", 23)}),
        # set iteration -> journal, list(set) -> canonical JSON;
        # sorted() variant silent.
        ("taint_setorder.py", {("DF104", 10), ("DF104", 24)}),
        # global random.random -> fingerprint; repro.rng substream
        # draw silent.
        ("taint_rng.py", {("DF105", 12)}),
        # sum over a set -> canonical JSON; sum(sorted(...)) silent.
        ("taint_floatsum.py", {("DF106", 10)}),
        # star import rejected outright.
        ("import_star.py", {("DF001", 2)}),
    ],
)
def test_taint_class_fires_and_sanitizer_suppresses(fixture: str, expected):
    findings = scan(FIXTURES / fixture)
    assert codes_and_lines(findings) == expected


def test_finding_messages_carry_source_and_sink():
    findings = scan(FIXTURES / "taint_listing.py")
    message = findings[0].message
    assert "unsorted directory listing" in message
    assert "shard record" in message
    assert "call chain:" in message


# -- interprocedural flows ------------------------------------------------


def test_taint_crosses_module_boundary_with_full_chain():
    findings = scan(FIXTURES / "flow_main.py", FIXTURES / "flow_helper.py")
    assert codes_and_lines(findings) == {("DF101", 10)}
    message = findings[0].message
    # The chain names every hop: source helper -> wrapper -> sinker.
    assert (
        "flow_helper.now_seconds -> flow_helper.wrap_timing -> flow_main.persist"
        in message
    )
    # The origin points into the *helper* module, the finding into the
    # sink module — cross-file attribution is the whole point.
    assert "flow_helper.py:8" in message
    assert findings[0].path.endswith("flow_main.py")


def test_helper_alone_is_clean():
    # The source without the sink is not a finding.
    assert scan(FIXTURES / "flow_helper.py") == []


# -- crash-boundary coverage ---------------------------------------------


def test_boundary_coverage_flags_only_the_orphan():
    findings = run_paths(
        [str(COVERAGE_PROJ / "pkg")],
        tests_dir=str(COVERAGE_PROJ / "tests"),
    )
    assert codes_and_lines(findings) == {("DF201", 15)}
    assert "fixture.step.orphan" in findings[0].message


def test_boundary_coverage_fails_closed_when_reference_deleted(tmp_path):
    # Deleting the crash test's reference to a boundary must resurface
    # it as DF201 — coverage is re-derived from the tests, not cached.
    proj = tmp_path / "proj"
    shutil.copytree(COVERAGE_PROJ, proj)
    crash_test = proj / "tests" / "test_store_crash.py"
    text = crash_test.read_text().replace('"fixture.step.write",\n', "")
    crash_test.write_text(text)
    findings = run_paths([str(proj / "pkg")], tests_dir=str(proj / "tests"))
    assert ("DF201", 13) in codes_and_lines(findings)
    assert any("fixture.step.write" in f.message for f in findings)


def test_boundary_coverage_fails_closed_when_crash_test_missing(tmp_path):
    proj = tmp_path / "proj"
    shutil.copytree(COVERAGE_PROJ, proj)
    (proj / "tests" / "test_store_crash.py").unlink()
    findings = run_paths([str(proj / "pkg")], tests_dir=str(proj / "tests"))
    codes = {f.code for f in findings}
    assert "DF202" in codes  # missing file: cannot verify == failure
    # The boundaries the deleted file referenced are now uncovered too.
    assert "DF201" in codes


def test_boundary_coverage_fails_closed_when_no_tests_dir():
    findings = run_paths([str(COVERAGE_PROJ / "pkg")], tests_dir=None)
    # Auto-discovery walks up from the fixture and finds the repo's own
    # tests/, which has no fixture.* references: everything uncovered —
    # either way the scan cannot silently pass.
    assert findings, "boundary declarations with no coverage must fail"


def test_fstring_boundaries_match_fstring_references():
    # src's journal boundaries are f-strings (journal.{label}.append);
    # the serve crash test references them with f-strings too.  The
    # pattern matcher must connect the two — proven by the self-scan
    # being free of DF201 for journal.* (see test_src_repro_is_clean).
    findings = run_paths(
        [str(SRC_REPRO / "serve" / "journal.py")], tests_dir=str(TESTS)
    )
    assert [f for f in findings if f.code in ("DF201", "DF202")] == []


# -- fork-safety ----------------------------------------------------------


def test_fork_safety_flags_live_captures():
    findings = scan(FIXTURES / "fork_capture.py")
    assert codes_and_lines(findings) == {
        ("DF301", 22),  # target=self._run bound method
        ("DF301", 29),  # live ShardWriter in args
        ("DF301", 36),  # open file handle in args
        ("DF301", 44),  # thread started in the forking function
    }
    by_line = {f.line: f.message for f in findings}
    assert "ShardWriter" in by_line[29]
    assert "open file handle" in by_line[36]
    assert "bound method" in by_line[22]
    assert "thread" in by_line[44]


# -- suppressions ---------------------------------------------------------


def test_detflow_suppression_uses_detflow_tag(tmp_path):
    # detflow honors "# detflow: ignore[...]" and ignores detlint tags.
    src = FIXTURES / "taint_rng.py"
    suppressed = tmp_path / "suppressed.py"
    text = src.read_text().replace(
        "return fingerprint({\"jitter\": jitter})  # DF105: global RNG",
        "return fingerprint({\"jitter\": jitter})  # detflow: ignore[DF105]",
    )
    suppressed.write_text(text)
    assert run_paths([str(suppressed)], tests_dir=str(TESTS)) == []

    wrong_tag = tmp_path / "wrong_tag.py"
    wrong_tag.write_text(text.replace("detflow: ignore", "detlint: ignore"))
    findings = run_paths([str(wrong_tag)], tests_dir=str(TESTS))
    assert {f.code for f in findings} == {"DF105"}


def test_unused_detflow_suppression_reported(tmp_path):
    path = tmp_path / "unused.py"
    path.write_text("x = 1  # detflow: ignore[DF101]\n")
    findings = run_paths([str(path)], tests_dir=str(TESTS))
    assert codes_and_lines(findings) == {("SUP001", 1)}


# -- CLI ------------------------------------------------------------------


def test_cli_exit_codes(capsys):
    assert main([str(FIXTURES / "taint_rng.py"), "--tests-dir", str(TESTS)]) == 1
    assert main([str(SRC_REPRO / "rng.py"), "--tests-dir", str(TESTS)]) == 0
    assert main(["--select", "NOPE123", str(FIXTURES)]) == 2
    capsys.readouterr()


def test_cli_select_narrows(capsys):
    code = main([
        str(FIXTURES / "fork_capture.py"),
        "--select", "DF101", "--tests-dir", str(TESTS),
    ])
    assert code == 0  # DF301 findings filtered out
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DF001", "DF101", "DF106", "DF201", "DF202", "DF301", "SUP001"):
        assert code in out


def test_cli_json_format(capsys):
    main([str(FIXTURES / "taint_rng.py"), "--format", "json",
          "--tests-dir", str(TESTS)])
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "DF105"


def test_cli_sarif_format(capsys):
    main([str(FIXTURES / "taint_rng.py"), "--format", "sarif",
          "--tests-dir", str(TESTS)])
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "detflow"
    assert [r["ruleId"] for r in run["results"]] == ["DF105"]
    region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 12


def test_sarif_output_is_deterministic(capsys):
    main([str(FIXTURES / "fork_capture.py"), "--format", "sarif",
          "--tests-dir", str(TESTS)])
    first = capsys.readouterr().out
    main([str(FIXTURES / "fork_capture.py"), "--format", "sarif",
          "--tests-dir", str(TESTS)])
    assert capsys.readouterr().out == first


def test_detlint_sarif_format(capsys):
    from repro.tools.detlint.__main__ import main as detlint_main

    fixture = TESTS / "detlint_fixtures" / "det008_listing.py"
    detlint_main([str(fixture), "--format", "sarif"])
    log = json.loads(capsys.readouterr().out)
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "detlint"
    assert {r["ruleId"] for r in run["results"]} == {"DET008"}


# -- the acceptance gate --------------------------------------------------


def test_src_repro_is_clean():
    """`python -m repro.tools.detflow src/repro` must exit 0.

    Every taint class above is proven to fire on fixtures; this proves
    the production tree carries none of them — and that every declared
    crash boundary has a crash test and no live state crosses a fork.
    """
    findings = run_paths([str(SRC_REPRO)], tests_dir=str(TESTS))
    assert findings == [], "\n".join(f.render() for f in findings)
