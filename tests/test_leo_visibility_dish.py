"""Dish models and satellite visibility under obstruction."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.leo.constellation import Constellation
from repro.leo.dish import DishModel, DishPlan, dish_for_plan, mobility_dish, roam_dish
from repro.leo.visibility import VisibilityModel, _azimuth_in_sector


@pytest.fixture(scope="module")
def model():
    return VisibilityModel(Constellation())


OBSERVER = GeoPoint(44.5, -92.0)


def test_mobility_wider_fov_than_roam():
    assert mobility_dish().min_elevation_deg < roam_dish().min_elevation_deg


def test_mobility_better_tracking_and_priority():
    mob, rm = mobility_dish(), roam_dish()
    assert mob.motion_tracking_factor > rm.motion_tracking_factor
    assert mob.priority_weight > rm.priority_weight
    assert mob.peak_downlink_mbps > rm.peak_downlink_mbps


def test_fdd_uplink_below_downlink():
    for dish in (mobility_dish(), roam_dish()):
        assert dish.peak_uplink_mbps < dish.peak_downlink_mbps / 5.0


def test_dish_for_plan_round_trip():
    assert dish_for_plan(DishPlan.ROAM).plan is DishPlan.ROAM
    assert dish_for_plan(DishPlan.MOBILITY).plan is DishPlan.MOBILITY


def test_dish_validation():
    with pytest.raises(ValueError):
        DishModel(
            plan=DishPlan.ROAM,
            min_elevation_deg=25.0,
            peak_downlink_mbps=100.0,
            peak_uplink_mbps=200.0,  # uplink > downlink: invalid FDD
            motion_tracking_factor=0.5,
            priority_weight=1.0,
            motion_loss_extra=0.0,
        )


def test_effective_mask_takes_max():
    dish = roam_dish()
    assert dish.effective_mask_deg(10.0) == dish.min_elevation_deg
    assert dish.effective_mask_deg(60.0) == 60.0


def test_open_sky_has_candidates(model):
    sats = model.visible_satellites(OBSERVER, 0.0, mobility_dish())
    assert len(sats) >= 1
    # Best-first ordering.
    elevations = [s.elevation_deg for s in sats]
    assert elevations == sorted(elevations, reverse=True)


def test_all_above_mask(model):
    dish = roam_dish()
    sats = model.visible_satellites(OBSERVER, 50.0, dish)
    assert all(s.elevation_deg >= dish.min_elevation_deg for s in sats)


def test_mobility_sees_at_least_as_many_as_roam(model):
    mob = model.visible_satellites(OBSERVER, 100.0, mobility_dish())
    rm = model.visible_satellites(OBSERVER, 100.0, roam_dish())
    assert len(mob) >= len(rm)


def test_obstruction_reduces_candidates(model):
    clear = model.visible_satellites(OBSERVER, 200.0, mobility_dish())
    blocked = model.visible_satellites(
        OBSERVER, 200.0, mobility_dish(), obstruction_fraction=0.85
    )
    assert len(blocked) < len(clear)


def test_blocked_sector_removes_low_satellites(model):
    full = model.visible_satellites(OBSERVER, 300.0, mobility_dish())
    sectors = [(0.0, 359.9)]
    masked = model.visible_satellites(
        OBSERVER, 300.0, mobility_dish(), blocked_sectors=sectors
    )
    # Only near-zenith (>= 60 deg) satellites survive a full azimuth block.
    assert all(s.elevation_deg >= 60.0 for s in masked)
    assert len(masked) <= len(full)


def test_max_candidates_respected(model):
    sats = model.visible_satellites(
        OBSERVER, 0.0, mobility_dish(), max_candidates=3
    )
    assert len(sats) <= 3


def test_azimuth_sector_wrapping():
    azim = np.array([350.0, 10.0, 180.0])
    inside = _azimuth_in_sector(azim, 340.0, 20.0)
    assert list(inside) == [True, True, False]


def test_random_sectors_track_obstruction():
    gen = np.random.default_rng(0)
    none = VisibilityModel.random_blocked_sectors(0.0, gen)
    heavy = VisibilityModel.random_blocked_sectors(0.7, gen)
    assert none == []
    assert len(heavy) >= 1
