"""Packet-level TCP behaviour."""

import numpy as np

from repro.conditions import LinkConditions, outage
from repro.net import FixedConditions, Path, Simulator
from repro.net.link import bdp_bytes
from repro.transport import open_tcp_connection


def fixed_path(sim, rate=100.0, delay_ms=20.0, loss=0.0, burst=1.0, buffer_bytes=None, seed=0):
    fwd = FixedConditions(rate, delay_ms, loss, burst)
    rev = FixedConditions(max(rate / 10.0, 1.0), delay_ms)
    buf = buffer_bytes or max(2 * bdp_bytes(rate, 2 * delay_ms), 64 * 1500)
    return Path(sim, fwd, rev, buf, np.random.default_rng(seed))


def run_tcp(sim, path, duration, **kwargs):
    sender, receiver = open_tcp_connection(sim, path, **kwargs)
    sender.start()
    sim.run(until_s=duration)
    return sender, receiver


def test_clean_link_near_capacity():
    sim = Simulator()
    path = fixed_path(sim, rate=50.0)
    _, receiver = run_tcp(sim, path, 10.0)
    assert receiver.bytes_received * 8 / 1e6 / 10.0 > 45.0


def test_loss_reduces_throughput():
    sim = Simulator()
    _, clean = run_tcp(sim, fixed_path(sim, rate=100.0, delay_ms=25.0), 15.0)
    sim2 = Simulator()
    _, lossy = run_tcp(
        sim2, fixed_path(sim2, rate=100.0, delay_ms=25.0, loss=0.01), 15.0
    )
    assert lossy.bytes_received < 0.4 * clean.bytes_received


def test_bursty_loss_hurts_less_than_iid():
    """The paper's core transport insight: at equal average loss, clustered
    (Starlink-style) loss costs TCP much less than independent loss."""
    sim = Simulator()
    _, iid = run_tcp(sim, fixed_path(sim, loss=0.01, burst=1.0, seed=1), 20.0)
    sim2 = Simulator()
    _, bursty = run_tcp(
        sim2, fixed_path(sim2, loss=0.01, burst=50.0, seed=1), 20.0
    )
    assert bursty.bytes_received > 1.5 * iid.bytes_received


def test_retransmission_accounting():
    sim = Simulator()
    sender, _ = run_tcp(sim, fixed_path(sim, loss=0.005, burst=10.0), 20.0)
    assert sender.stats.retransmissions > 0
    assert 0.0 < sender.stats.retransmission_rate < 0.1


def test_clean_link_no_spurious_retransmits():
    sim = Simulator()
    sender, _ = run_tcp(sim, fixed_path(sim, rate=20.0), 10.0)
    assert sender.stats.retransmission_rate < 0.01
    assert sender.stats.rto_events == 0


def test_rtt_estimation_close_to_path_rtt():
    sim = Simulator()
    sender, _ = run_tcp(sim, fixed_path(sim, rate=20.0, delay_ms=30.0), 10.0)
    # 60 ms propagation + queueing.
    assert 0.055 <= sender.smoothed_rtt_s <= 0.2


def test_receive_buffer_caps_throughput():
    """Small advertised windows bound throughput at rwnd/RTT — the
    mechanism behind the paper's untuned-buffer MPTCP result."""
    sim = Simulator()
    path = fixed_path(sim, rate=100.0, delay_ms=25.0)
    _, receiver = run_tcp(
        sim, path, 10.0, receiver_buffer_segments=40
    )
    mbps = receiver.bytes_received * 8 / 1e6 / 10.0
    # 40 segments * 1500 B / 50 ms = 9.6 Mbps ceiling.
    assert mbps <= 12.0


def test_outage_recovery():
    samples = []
    for t in range(60):
        if 20 <= t < 25:
            samples.append(outage(float(t)))
        else:
            samples.append(
                LinkConditions(float(t), 50.0, 5.0, 40.0, 0.0)
            )
    sim = Simulator()
    path = Path.from_conditions(sim, samples, np.random.default_rng(0))
    sender, receiver = open_tcp_connection(sim, path)
    sender.start()
    sim.run(until_s=60.0)
    # 55 live seconds at 50 Mbps less recovery overhead.
    assert receiver.bytes_received * 8 / 1e6 > 0.6 * 55 * 50
    assert sender.stats.rto_events >= 1


def test_total_segments_limits_transfer():
    sim = Simulator()
    path = fixed_path(sim, rate=50.0)
    sender, receiver = open_tcp_connection(sim, path, total_segments=100)
    sender.start()
    sim.run(until_s=10.0)
    assert receiver.bytes_received == 100 * 1500


def test_reno_and_cubic_both_work():
    for cc in ("reno", "cubic"):
        sim = Simulator()
        path = fixed_path(sim, rate=30.0)
        _, receiver = run_tcp(sim, path, 10.0, congestion=cc)
        assert receiver.bytes_received * 8 / 1e6 / 10.0 > 24.0


def test_in_order_delivery():
    sim = Simulator()
    path = fixed_path(sim, loss=0.02, burst=5.0, seed=3)
    sender, receiver = open_tcp_connection(sim, path)
    sender.start()
    sim.run(until_s=10.0)
    # Everything delivered to the app is the in-order prefix.
    assert receiver.bytes_received == receiver.rcv_next * 1500


def test_sack_blocks_reported():
    sim = Simulator()
    path = fixed_path(sim, loss=0.05, burst=3.0, seed=4)
    sender, receiver = open_tcp_connection(sim, path)
    sender.start()
    sim.run(until_s=5.0)
    assert sender.stats.fast_retransmits > 0
