"""Campaign orchestration."""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig, TestKind, run_campaign
from repro.core.dataset import NETWORKS
from repro.geo.classify import AreaType


@pytest.fixture(scope="module")
def smoke_dataset():
    return run_campaign(CampaignConfig.smoke(seed=3))


def test_all_networks_tested_simultaneously(smoke_dataset):
    by_window = {}
    for rec in smoke_dataset.records:
        key = (rec.drive_id, rec.samples[0].time_s if rec.samples else -1)
        by_window.setdefault(key, set()).add(rec.network)
    for networks in by_window.values():
        assert networks == set(NETWORKS)


def test_cycle_produces_all_test_kinds(smoke_dataset):
    kinds = {
        (rec.protocol, rec.direction, rec.parallel)
        for rec in smoke_dataset.records
    }
    assert ("udp", "dl", 1) in kinds
    assert ("tcp", "dl", 1) in kinds
    assert ("udp", "ul", 1) in kinds
    assert ("ping", "dl", 1) in kinds


def test_sample_metadata_joined(smoke_dataset):
    rec = smoke_dataset.records[0]
    assert rec.samples
    for s in rec.samples:
        assert -90 <= s.lat_deg <= 90
        assert s.speed_kmh >= 0.0
        assert isinstance(s.area, AreaType)


def test_campaign_totals(smoke_dataset):
    assert smoke_dataset.distance_km > 1.0
    assert smoke_dataset.trace_minutes > 10.0
    assert sum(smoke_dataset.area_proportions.values()) == pytest.approx(1.0)


def test_ping_records_have_zero_throughput(smoke_dataset):
    pings = smoke_dataset.filter(protocol="ping")
    assert pings.num_tests > 0
    assert all(s.throughput_mbps == 0.0 for r in pings.records for s in r.samples)
    assert any(s.rtt_ms > 0 for r in pings.records for s in r.samples)


def test_tcp_records_have_retransmission_rates(smoke_dataset):
    tcp = smoke_dataset.filter(protocol="tcp")
    rates = [r.retransmission_rate for r in tcp.records]
    assert all(0.0 <= r <= 1.0 for r in rates)
    starlink = smoke_dataset.filter(protocol="tcp", network="MOB")
    cellular = smoke_dataset.filter(protocol="tcp", network="VZ")
    assert np.mean([r.retransmission_rate for r in starlink.records]) > np.mean(
        [r.retransmission_rate for r in cellular.records]
    )


def test_campaign_reproducible():
    a = run_campaign(CampaignConfig.smoke(seed=9))
    b = run_campaign(CampaignConfig.smoke(seed=9))
    assert a.num_tests == b.num_tests
    va = a.filter(network="MOB", protocol="udp", direction="dl").throughput_samples()
    vb = b.filter(network="MOB", protocol="udp", direction="dl").throughput_samples()
    assert va == vb


def test_different_seeds_differ():
    a = run_campaign(CampaignConfig.smoke(seed=9))
    b = run_campaign(CampaignConfig.smoke(seed=10))
    va = a.filter(network="MOB", protocol="udp", direction="dl").throughput_samples()
    vb = b.filter(network="MOB", protocol="udp", direction="dl").throughput_samples()
    assert va != vb


def test_custom_cycle():
    config = CampaignConfig.smoke(seed=1)
    config.cycle = (TestKind("udp", "dl"),)
    ds = run_campaign(config)
    assert {r.protocol for r in ds.records} == {"udp"}


def test_city_drive_config():
    config = CampaignConfig(
        seed=2,
        num_interstate_drives=0,
        num_city_drives=1,
        max_drive_seconds=300.0,
        test_duration_s=30.0,
        window_period_s=40.0,
    )
    ds = run_campaign(config)
    assert ds.num_tests > 0


def test_report_json_byte_identical_across_fault_dict_order(tmp_path):
    """Equal reports serialize to equal bytes regardless of the order
    fault kinds were first encountered.

    Regression test: ``CampaignReport.to_dict`` used to emit
    ``fault_seconds``/``scheduled_faults`` in dict insertion order,
    which depends on which drive hit which fault kind first — so two
    runs with identical totals could write different report files.
    """
    from repro.core.campaign import CampaignReport

    kwargs = dict(
        drives_total=2,
        drives_completed=2,
        num_tests=10,
        fault_outage_seconds=30,
    )
    forward = CampaignReport(
        fault_seconds={"satellite_outage": 30, "cell_outage": 12},
        scheduled_faults={"satellite_outage": 2, "cell_outage": 1},
        **kwargs,
    )
    reverse = CampaignReport(
        fault_seconds={"cell_outage": 12, "satellite_outage": 30},
        scheduled_faults={"cell_outage": 1, "satellite_outage": 2},
        **kwargs,
    )
    path_a = tmp_path / "forward.json"
    path_b = tmp_path / "reverse.json"
    forward.save_json(path_a)
    reverse.save_json(path_b)
    assert path_a.read_bytes() == path_b.read_bytes()
