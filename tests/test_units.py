"""Unit-conversion helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_speed_of_light_matches_paper_equation1():
    # 550 km / c must give the paper's 1.835 ms (Equation 1).
    latency_ms = 550.0 / units.SPEED_OF_LIGHT_KM_S * 1000.0
    assert latency_ms == pytest.approx(1.835, abs=0.001)


def test_mbps_round_trip():
    assert units.bps_to_mbps(units.mbps_to_bps(123.4)) == pytest.approx(123.4)


def test_mbps_to_bytes_per_sec():
    assert units.mbps_to_bytes_per_sec(8.0) == pytest.approx(1e6)


def test_bytes_to_megabits():
    assert units.bytes_to_megabits(125_000) == pytest.approx(1.0)


def test_kmh_ms_round_trip():
    assert units.ms_to_kmh(units.kmh_to_ms(100.0)) == pytest.approx(100.0)


def test_ms_seconds_round_trip():
    assert units.seconds_to_ms(units.ms_to_seconds(250.0)) == pytest.approx(250.0)


def test_throughput_simple():
    # 1 MB in 1 s = 8 Mbps.
    assert units.throughput_mbps(1e6, 1.0) == pytest.approx(8.0)


def test_throughput_zero_duration_is_zero():
    assert units.throughput_mbps(1000, 0.0) == 0.0
    assert units.throughput_mbps(1000, -1.0) == 0.0


@given(st.floats(min_value=0.0, max_value=1e6))
def test_conversion_non_negative(mbps):
    assert units.mbps_to_bps(mbps) >= 0.0
    assert units.mbps_to_bytes_per_sec(mbps) >= 0.0


@given(
    st.floats(min_value=1.0, max_value=1e12),
    st.floats(min_value=0.001, max_value=1e5),
)
def test_throughput_positive(num_bytes, duration):
    assert units.throughput_mbps(num_bytes, duration) > 0.0


def test_constants_sane():
    assert 6000.0 < units.EARTH_RADIUS_KM < 7000.0
    assert math.isclose(units.SPEED_OF_LIGHT_M_S, 299_792_458.0)
    assert units.DEFAULT_MTU_BYTES == 1500
